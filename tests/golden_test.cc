// Golden regression vectors: with everything pinned (data seed, keys, e,
// ECC), the embedding algorithm's output is part of the on-disk/contract
// surface — detectors in the field hold certificates for data marked by
// *this* exact algorithm, so any accidental change to the fitness test,
// the bit-position hash or the value-selection rule must fail loudly here
// rather than silently orphan deployed watermarks.

#include <gtest/gtest.h>

#include "core/certificate.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "crypto/sha256.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/csv.h"

namespace catmark {
namespace {

struct GoldenSetup {
  Relation marked;
  EmbedReport report;
  BitVector wm;
};

// `prf` nullopt = the pre-PRF-subsystem call shape (auto resolution); the
// compatibility guards below also run it with the explicit legacy backend
// and assert both are byte-identical to the pinned pre-refactor hashes.
GoldenSetup RunGoldenEmbedding(std::optional<PrfKind> prf = std::nullopt) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 64;
  gen.zipf_s = 1.0;
  gen.seed = 424242;
  GoldenSetup s;
  s.marked = GenerateKeyedCategorical(gen);
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("golden");
  WatermarkParams params;
  params.e = 25;
  params.prf = prf;
  s.wm = BitVector::FromString("1011001110").value();
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  s.report = Embedder(keys, params).Embed(s.marked, options, s.wm).value();
  return s;
}

TEST(GoldenTest, GeneratorIsStable) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 64;
  gen.seed = 424242;
  const Relation rel = GenerateKeyedCategorical(gen);
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(rel)).ToHex(),
      "a74968c3b53d067b5bf36f885cadf48e6c8ec835c801cd26b51b6cba8084a0a8");
}

TEST(GoldenTest, EmbeddingIsStable) {
  const GoldenSetup s = RunGoldenEmbedding();
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(s.marked)).ToHex(),
      "cdc9fcdcdc04480afcdb7338d8c67512911da1251e3ce1e57be25df5903c2e82");
}

TEST(GoldenTest, ReportCountsAreStable) {
  const GoldenSetup s = RunGoldenEmbedding();
  EXPECT_EQ(s.report.fit_tuples, 71u);
  EXPECT_EQ(s.report.altered_tuples, 70u);
  EXPECT_EQ(s.report.payload_length, 80u);
}

TEST(GoldenTest, KeyedHashVectorsAreStable) {
  // The exact H(V,k) values the fitness test depends on.
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("golden");
  const KeyedHasher h1(keys.k1);
  EXPECT_EQ(h1.Hash64(std::uint64_t{1}), 0x1a6a2a152f01c4e4ULL);
  EXPECT_EQ(h1.Hash64(std::string_view("watermark")),
            0x5c16678f632a5643ULL);
}

// --- PRF-subsystem compatibility guards -----------------------------------
//
// The keyed-PRF refactor must not move a single byte of the default
// channel: datasets watermarked (and certificates issued) before it have to
// keep verifying forever.

TEST(GoldenCompatTest, ExplicitLegacyBackendMatchesPreRefactorEmbedding) {
  // Selecting "keyed-hash" explicitly reproduces the exact pre-refactor
  // dataset (same pinned hash as GoldenTest.EmbeddingIsStable).
  const GoldenSetup s = RunGoldenEmbedding(PrfKind::kKeyedHash);
  EXPECT_EQ(s.report.prf, PrfKind::kKeyedHash);
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(s.marked)).ToHex(),
      "cdc9fcdcdc04480afcdb7338d8c67512911da1251e3ce1e57be25df5903c2e82");
}

TEST(GoldenCompatTest, CertificateRoundTripIsByteStable) {
  // The full serialized certificate of the golden embedding is part of the
  // contract surface: owners hold these files. Byte-identical round-trip,
  // and the serialization itself is pinned (a deliberate format change must
  // update this hash consciously).
  const GoldenSetup s = RunGoldenEmbedding(PrfKind::kKeyedHash);
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("golden");
  WatermarkParams params;
  params.e = 25;
  params.prf = PrfKind::kKeyedHash;
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const WatermarkCertificate cert = WatermarkCertificate::Create(
      keys, params, options, s.report, s.wm, {}, "golden");
  const std::string text = cert.Serialize();
  const WatermarkCertificate back =
      WatermarkCertificate::Deserialize(text).value();
  EXPECT_TRUE(back == cert);
  EXPECT_EQ(back.Serialize(), text);
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(text).ToHex(),
      "a697187197650f046b7d1e7f83ba02aa0ce7267135248b6f35178613c5486a24");

  // And the certificate actually verifies the golden dataset.
  const CertifiedDetection result =
      DetectWithCertificate(s.marked, back, keys).value();
  EXPECT_TRUE(result.decision.owned);
}

TEST(GoldenCompatTest, SipHashEmbeddingIsStable) {
  // Pin the fast backend's output too: once users embed under siphash24,
  // its channel is as much a contract as the legacy one.
  const GoldenSetup s = RunGoldenEmbedding(PrfKind::kSipHash24);
  EXPECT_EQ(s.report.prf, PrfKind::kSipHash24);
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(s.marked)).ToHex(),
      "d325634b623a545ca00b353945cf90dd2f06ca31b9f47fc44d372f13fa2fc690");
}

}  // namespace
}  // namespace catmark
