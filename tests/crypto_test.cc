#include <gtest/gtest.h>

#include <string>

#include "crypto/hash.h"
#include "crypto/keyed_hash.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace catmark {
namespace {

// ------------------------------------------------------- MD5 (RFC 1321 A.5)

struct HashVector {
  const char* message;
  const char* digest_hex;
};

class Md5VectorTest : public ::testing::TestWithParam<HashVector> {};

TEST_P(Md5VectorTest, MatchesRfc1321) {
  Md5 md5;
  EXPECT_EQ(md5.Hash(GetParam().message).ToHex(), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5VectorTest,
    ::testing::Values(
        HashVector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        HashVector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        HashVector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        HashVector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        HashVector{"abcdefghijklmnopqrstuvwxyz",
                   "c3fcd3d76192e4007dfb496cca67e13b"},
        HashVector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                   "56789",
                   "d174ab98d277d9f5a5611c2c9f419d9f"},
        HashVector{"1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890",
                   "57edf4a22be3c955ac49da2e2107b67a"}));

// ------------------------------------------------------------ SHA-1 (FIPS)

class Sha1VectorTest : public ::testing::TestWithParam<HashVector> {};

TEST_P(Sha1VectorTest, MatchesFips180) {
  Sha1 sha;
  EXPECT_EQ(sha.Hash(GetParam().message).ToHex(), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha1VectorTest,
    ::testing::Values(
        HashVector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        HashVector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        HashVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        HashVector{"The quick brown fox jumps over the lazy dog",
                   "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

// ---------------------------------------------------------- SHA-256 (FIPS)

class Sha256VectorTest : public ::testing::TestWithParam<HashVector> {};

TEST_P(Sha256VectorTest, MatchesFips180) {
  Sha256 sha;
  EXPECT_EQ(sha.Hash(GetParam().message).ToHex(), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256VectorTest,
    ::testing::Values(
        HashVector{
            "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        HashVector{
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        HashVector{
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        HashVector{
            "The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

// ----------------------------------------------------- streaming behaviour

TEST(HashStreamingTest, ChunkedUpdateEqualsOneShot) {
  const std::string msg(1000, 'x');
  for (const HashAlgorithm algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    auto one_shot = CreateHash(algo);
    const Digest expected = one_shot->Hash(msg);

    auto streaming = CreateHash(algo);
    streaming->Reset();
    for (std::size_t i = 0; i < msg.size(); i += 7) {
      const std::size_t n = std::min<std::size_t>(7, msg.size() - i);
      streaming->Update(
          reinterpret_cast<const std::uint8_t*>(msg.data()) + i, n);
    }
    EXPECT_EQ(streaming->Finish(), expected)
        << "algorithm " << HashAlgorithmName(algo);
  }
}

TEST(HashStreamingTest, ReusableAfterFinish) {
  Sha256 sha;
  const Digest first = sha.Hash("one");
  const Digest second = sha.Hash("two");
  const Digest first_again = sha.Hash("one");
  EXPECT_EQ(first, first_again);
  EXPECT_FALSE(first == second);
}

TEST(HashStreamingTest, MultiBlockMessages) {
  // Exercise the 64-byte block boundary paths (55/56/64/65 bytes).
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 128u, 1000u}) {
    const std::string msg(len, 'q');
    Sha256 a, b;
    a.Update(reinterpret_cast<const std::uint8_t*>(msg.data()), len);
    const Digest whole = a.Finish();
    b.Update(reinterpret_cast<const std::uint8_t*>(msg.data()), len / 2);
    b.Update(reinterpret_cast<const std::uint8_t*>(msg.data()) + len / 2,
             len - len / 2);
    EXPECT_EQ(b.Finish(), whole) << "length " << len;
  }
}

TEST(DigestTest, ToUint64IsBigEndianPrefix) {
  Digest d;
  d.size = 16;
  for (int i = 0; i < 8; ++i) {
    d.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  }
  EXPECT_EQ(d.ToUint64(), 0x0102030405060708ULL);
}

TEST(DigestTest, DigestSizesMatchAlgorithms) {
  EXPECT_EQ(Md5().DigestSize(), 16u);
  EXPECT_EQ(Sha1().DigestSize(), 20u);
  EXPECT_EQ(Sha256().DigestSize(), 32u);
}

TEST(HashFactoryTest, CreatesNamedAlgorithms) {
  EXPECT_EQ(CreateHash(HashAlgorithm::kMd5)->Name(), "MD5");
  EXPECT_EQ(CreateHash(HashAlgorithm::kSha1)->Name(), "SHA-1");
  EXPECT_EQ(CreateHash(HashAlgorithm::kSha256)->Name(), "SHA-256");
}

// ----------------------------------------------------------------- SecretKey

TEST(SecretKeyTest, FromPassphraseIsDeterministic) {
  const SecretKey a = SecretKey::FromPassphrase("owner-secret");
  const SecretKey b = SecretKey::FromPassphrase("owner-secret");
  const SecretKey c = SecretKey::FromPassphrase("other-secret");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.bytes().size(), 32u);
}

TEST(SecretKeyTest, FromSeedIsDeterministic) {
  EXPECT_EQ(SecretKey::FromSeed(7), SecretKey::FromSeed(7));
  EXPECT_FALSE(SecretKey::FromSeed(7) == SecretKey::FromSeed(8));
}

TEST(SecretKeyTest, FromBytesKeepsBytes) {
  const SecretKey k = SecretKey::FromBytes({1, 2, 3});
  EXPECT_EQ(k.ToHex(), "010203");
}

// ---------------------------------------------------------------- KeyedHash

TEST(KeyedHasherTest, DeterministicPerKeyAndMessage) {
  const KeyedHasher h(SecretKey::FromPassphrase("k"));
  EXPECT_EQ(h.Hash64(std::string_view("msg")),
            h.Hash64(std::string_view("msg")));
  EXPECT_NE(h.Hash64(std::string_view("msg")),
            h.Hash64(std::string_view("msh")));
}

TEST(KeyedHasherTest, DifferentKeysDiffer) {
  const KeyedHasher h1(SecretKey::FromPassphrase("k1"));
  const KeyedHasher h2(SecretKey::FromPassphrase("k2"));
  EXPECT_NE(h1.Hash64(std::string_view("msg")),
            h2.Hash64(std::string_view("msg")));
}

TEST(KeyedHasherTest, MatchesManualKeyWrapConstruction) {
  // H(V, k) = crypto_hash(k ; V ; k), Section 2.2.
  const SecretKey key = SecretKey::FromBytes({0xAA, 0xBB});
  const KeyedHasher h(key, HashAlgorithm::kSha256);
  Sha256 manual;
  const std::string msg = "tuple-key";
  manual.Update(key.bytes().data(), key.bytes().size());
  manual.Update(reinterpret_cast<const std::uint8_t*>(msg.data()),
                msg.size());
  manual.Update(key.bytes().data(), key.bytes().size());
  EXPECT_EQ(h.Hash64(msg), manual.Finish().ToUint64());
}

TEST(KeyedHasherTest, IntegerOverloadUsesBigEndianSerialization) {
  const SecretKey key = SecretKey::FromSeed(1);
  const KeyedHasher h(key);
  const std::uint8_t be[8] = {0, 0, 0, 0, 0, 0, 0x30, 0x39};  // 12345
  EXPECT_EQ(h.Hash64(std::uint64_t{12345}), h.Hash64(be, 8));
}

TEST(KeyedHasherTest, AllAlgorithmsWork) {
  const SecretKey key = SecretKey::FromSeed(2);
  for (const HashAlgorithm algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const KeyedHasher h(key, algo);
    EXPECT_NE(h.Hash64(std::string_view("x")), 0u)
        << HashAlgorithmName(algo);
  }
}

TEST(KeyedHasherTest, Hash64IsUniformishAcrossResidues) {
  // Sanity check of the fitness channel: residues mod e should be roughly
  // uniform so that ~N/e tuples are selected.
  const KeyedHasher h(SecretKey::FromSeed(3));
  const std::uint64_t e = 10;
  std::size_t hits = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    if (h.Hash64(static_cast<std::uint64_t>(i)) % e == 0) ++hits;
  }
  const double fraction = static_cast<double>(hits) / static_cast<double>(n);
  EXPECT_NEAR(fraction, 0.1, 0.02);
}

}  // namespace
}  // namespace catmark
