// End-to-end embed -> attack -> detect roundtrip through the public
// umbrella header. This suite exists to guard the build graph itself: it
// links against every module via catmark::catmark and exercises the main
// ownership-proof flow, so a broken target or ODR drift fails loudly here.
#include <gtest/gtest.h>

#include "core/catmark.h"
#include "test_util.h"

namespace catmark {
namespace {

TEST(BuildSanityTest, EmbedAttackDetectRoundtrip) {
  Relation rel = testutil::SmallKeyedRelation(/*num_tuples=*/4000,
                                              /*domain_size=*/40);
  const WatermarkKeySet keys = testutil::TestKeys();
  WatermarkParams params;
  params.e = 40;
  const BitVector wm = testutil::TestWatermark(24);

  EmbedOptions embed_options;
  embed_options.key_attr = testutil::kKeyAttr;
  embed_options.target_attr = testutil::kTargetAttr;

  const Embedder embedder(keys, params);
  auto embed = embedder.Embed(rel, embed_options, wm);
  ASSERT_TRUE(embed.ok()) << embed.status().ToString();
  EXPECT_GT(embed->fit_tuples, 0u);
  EXPECT_GT(embed->payload_length, 0u);

  // A3 subset alteration over 5% of the tuples, then A4 re-sorting.
  auto attacked = SubsetAlterationAttack(rel, testutil::kTargetAttr,
                                         /*alter_fraction=*/0.05,
                                         /*seed=*/123);
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();
  const Relation suspect = ResortAttack(*attacked, /*seed=*/456);

  DetectOptions detect_options;
  detect_options.key_attr = testutil::kKeyAttr;
  detect_options.target_attr = testutil::kTargetAttr;
  detect_options.domain = embed->domain;
  detect_options.payload_length = embed->payload_length;

  const Detector detector(keys, params);
  auto detection = detector.Detect(suspect, detect_options, wm.size());
  ASSERT_TRUE(detection.ok()) << detection.status().ToString();

  const MatchStats stats = MatchWatermark(wm, detection->wm);
  EXPECT_EQ(stats.total_bits, wm.size());
  // A 5% alteration leaves the majority-voted mark essentially intact.
  EXPECT_GE(stats.match_fraction, 0.9);
  EXPECT_LT(stats.false_match_probability, 1e-3);
}

TEST(BuildSanityTest, DetectWithWrongKeysFindsNothing) {
  Relation rel = testutil::SmallKeyedRelation(/*num_tuples=*/4000,
                                              /*domain_size=*/40);
  WatermarkParams params;
  params.e = 40;
  const BitVector wm = testutil::TestWatermark(24);

  EmbedOptions embed_options;
  embed_options.key_attr = testutil::kKeyAttr;
  embed_options.target_attr = testutil::kTargetAttr;

  const Embedder embedder(testutil::TestKeys(/*seed=*/7), params);
  auto embed = embedder.Embed(rel, embed_options, wm);
  ASSERT_TRUE(embed.ok()) << embed.status().ToString();

  DetectOptions detect_options;
  detect_options.key_attr = testutil::kKeyAttr;
  detect_options.target_attr = testutil::kTargetAttr;
  detect_options.domain = embed->domain;
  detect_options.payload_length = embed->payload_length;

  const Detector mallory(testutil::TestKeys(/*seed=*/1234), params);
  auto detection = mallory.Detect(rel, detect_options, wm.size());
  ASSERT_TRUE(detection.ok()) << detection.status().ToString();

  const MatchStats stats = MatchWatermark(wm, detection->wm);
  // With the wrong keys the decoded mark is random: ~50% agreement.
  EXPECT_LE(stats.match_fraction, 0.8);
  EXPECT_GT(stats.false_match_probability, 1e-6);
}

}  // namespace
}  // namespace catmark
