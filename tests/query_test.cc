#include <gtest/gtest.h>

#include "relation/query.h"
#include "relation/relation.h"

namespace catmark {
namespace {

Relation SalesLike() {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"Dept", ColumnType::kString, true},
                               {"Store", ColumnType::kInt64, true}},
                              "K")
                   .value());
  const struct {
    const char* dept;
    std::int64_t store;
  } rows[] = {{"GROCERY", 1}, {"GROCERY", 1}, {"GROCERY", 2}, {"DAIRY", 1},
              {"DAIRY", 2},   {"TOYS", 2},    {"TOYS", 2},    {"TOYS", 2}};
  std::int64_t k = 0;
  for (const auto& r : rows) {
    rel.AppendRowUnchecked(
        {Value(k++), Value(std::string(r.dept)), Value(r.store)});
  }
  return rel;
}

TEST(QueryTest, CountWhere) {
  const Relation rel = SalesLike();
  EXPECT_EQ(CountWhere(rel, {"Dept", Value("GROCERY")}).value(), 3u);
  EXPECT_EQ(CountWhere(rel, {"Dept", Value("TOYS")}).value(), 3u);
  EXPECT_EQ(CountWhere(rel, {"Dept", Value("MISSING")}).value(), 0u);
  EXPECT_EQ(CountWhere(rel, {"Store", Value(std::int64_t{2})}).value(), 5u);
}

TEST(QueryTest, CountWhereUnknownColumnFails) {
  EXPECT_FALSE(CountWhere(SalesLike(), {"Nope", Value("x")}).ok());
}

TEST(QueryTest, CountWhereSignedZeroUsesValueEquality) {
  // Dictionary interning is bit-exact (0.0 and -0.0 get distinct codes) but
  // predicate matching follows Value::Compare, which treats them as equal —
  // the dict fast path must not change the count.
  Relation rel(Schema::Create({{"D", ColumnType::kDouble, true}}, "").value());
  rel.AppendRowUnchecked({Value(0.0)});
  rel.AppendRowUnchecked({Value(-0.0)});
  rel.AppendRowUnchecked({Value(1.5)});
  ASSERT_EQ(rel.store().Dict(0).size(), 3u);  // bit-distinct codes
  EXPECT_EQ(CountWhere(rel, {"D", Value(0.0)}).value(), 2u);
  EXPECT_EQ(CountWhere(rel, {"D", Value(-0.0)}).value(), 2u);
}

TEST(QueryTest, CountWhereBoth) {
  const Relation rel = SalesLike();
  EXPECT_EQ(CountWhereBoth(rel, {"Dept", Value("GROCERY")},
                           {"Store", Value(std::int64_t{1})})
                .value(),
            2u);
  EXPECT_EQ(CountWhereBoth(rel, {"Dept", Value("TOYS")},
                           {"Store", Value(std::int64_t{1})})
                .value(),
            0u);
}

TEST(QueryTest, RuleConfidence) {
  const Relation rel = SalesLike();
  // P(Dept=TOYS | Store=2) = 3/5.
  EXPECT_NEAR(RuleConfidence(rel, {"Dept", Value("TOYS")},
                             {"Store", Value(std::int64_t{2})})
                  .value(),
              0.6, 1e-12);
  // Antecedent never holds -> 0.
  EXPECT_DOUBLE_EQ(RuleConfidence(rel, {"Dept", Value("TOYS")},
                                  {"Store", Value(std::int64_t{99})})
                       .value(),
                   0.0);
}

TEST(QueryTest, RuleSupport) {
  const Relation rel = SalesLike();
  // support(Store=2 AND Dept=TOYS) = 3/8.
  EXPECT_NEAR(RuleSupport(rel, {"Dept", Value("TOYS")},
                          {"Store", Value(std::int64_t{2})})
                  .value(),
              3.0 / 8.0, 1e-12);
}

TEST(QueryTest, EmptyRelation) {
  Relation rel(SalesLike().schema());
  EXPECT_EQ(CountWhere(rel, {"Dept", Value("GROCERY")}).value(), 0u);
  EXPECT_DOUBLE_EQ(RuleSupport(rel, {"Dept", Value("A")},
                               {"Store", Value(std::int64_t{1})})
                       .value(),
                   0.0);
}

}  // namespace
}  // namespace catmark
