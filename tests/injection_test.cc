#include <gtest/gtest.h>

#include <set>

#include "attack/attacks.h"
#include "core/codec.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/injection.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

Relation StandardRelation(std::size_t n = 6000, std::uint64_t seed = 71) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = 100;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

EmbedOptions KA() {
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  return options;
}

TEST(InjectionTest, AddsRequestedFraction) {
  Relation rel = StandardRelation();
  const FitTupleInjector injector(WatermarkKeySet::FromSeed(1),
                                  WatermarkParams{});
  InjectionConfig config;
  config.padd = 0.05;
  const InjectionReport report =
      injector.Inject(rel, KA(), MakeWatermark(10, 1), config).value();
  EXPECT_EQ(report.tuples_added, 300u);
  EXPECT_EQ(rel.NumRows(), 6300u);
}

TEST(InjectionTest, InjectedTuplesAreFit) {
  Relation rel = StandardRelation();
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(2);
  WatermarkParams params;
  params.e = 40;
  const FitTupleInjector injector(keys, params);
  InjectionConfig config;
  config.padd = 0.03;
  const std::size_t before = rel.NumRows();
  ASSERT_TRUE(injector.Inject(rel, KA(), MakeWatermark(10, 2), config).ok());
  const FitnessSelector fitness(keys.k1, params.e);
  for (std::size_t i = before; i < rel.NumRows(); ++i) {
    EXPECT_TRUE(fitness.IsFit(rel.Get(i, 0)))
        << "injected tuple " << i << " fails the fitness test";
  }
}

TEST(InjectionTest, InjectedKeysAreUnique) {
  Relation rel = StandardRelation();
  const FitTupleInjector injector(WatermarkKeySet::FromSeed(3),
                                  WatermarkParams{});
  InjectionConfig config;
  config.padd = 0.1;
  ASSERT_TRUE(injector.Inject(rel, KA(), MakeWatermark(10, 3), config).ok());
  std::set<std::int64_t> keys;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    EXPECT_TRUE(keys.insert(rel.Get(i, 0).AsInt64()).second);
  }
}

TEST(InjectionTest, InjectedValuesConformToDomain) {
  Relation rel = StandardRelation();
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const FitTupleInjector injector(WatermarkKeySet::FromSeed(4),
                                  WatermarkParams{});
  InjectionConfig config;
  config.padd = 0.05;
  const std::size_t before = rel.NumRows();
  ASSERT_TRUE(injector.Inject(rel, KA(), MakeWatermark(10, 4), config).ok());
  for (std::size_t i = before; i < rel.NumRows(); ++i) {
    EXPECT_TRUE(domain.Contains(rel.Get(i, 1)));
  }
}

TEST(InjectionTest, CandidateCostIsAboutEPerHit) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 50;
  const FitTupleInjector injector(WatermarkKeySet::FromSeed(5), params);
  InjectionConfig config;
  config.padd = 0.02;  // 120 tuples
  const InjectionReport report =
      injector.Inject(rel, KA(), MakeWatermark(10, 5), config).value();
  EXPECT_EQ(report.tuples_added, 120u);
  // ~e candidates per accepted tuple (generous 2x band).
  EXPECT_GT(report.candidates_tried, 120u * 50 / 2);
  EXPECT_LT(report.candidates_tried, 120u * 50 * 2);
}

TEST(InjectionTest, InjectionAloneCarriesDetectableMark) {
  // Pure data-addition embedding: no original tuple is altered, yet the
  // mark is detectable (weakly on its own — boosted when combined with the
  // base embedding, see InjectionStrengthensMark).
  Relation rel = StandardRelation();
  const Relation original = rel;
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(6);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 6);
  const FitTupleInjector injector(keys, params);
  InjectionConfig config;
  config.padd = 0.10;
  const InjectionReport report =
      injector.Inject(rel, KA(), wm, config).value();

  // Original rows untouched.
  for (std::size_t i = 0; i < original.NumRows(); ++i) {
    EXPECT_EQ(rel.Get(i, 1), original.Get(i, 1));
  }

  const Detector detector(keys, params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = report.payload_length;
  const DetectionResult detection =
      detector.Detect(rel, options, wm.size()).value();
  // 600 injected fit tuples vs ~200 random-voting original fit tuples:
  // clear majority for the mark.
  EXPECT_GE(MatchWatermark(wm, detection.wm).match_fraction, 0.9);
}

TEST(InjectionTest, InjectionStrengthensMarkUnderDataLoss) {
  // Section 4.6: "the watermark is effectively enforced with an additional
  // padd*N bits". Compare data-loss resilience with and without injection.
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(7);
  WatermarkParams params;
  params.e = 60;
  const BitVector wm = MakeWatermark(10, 7);

  auto detect_after_loss = [&](const Relation& marked,
                               std::size_t payload_len) {
    double match = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const Relation kept =
          HorizontalPartitionAttack(marked, 0.15, 700 + seed).value();
      const Detector detector(keys, params);
      DetectOptions options;
      options.key_attr = "K";
      options.target_attr = "A";
      options.payload_length = payload_len;
      const DetectionResult detection =
          detector.Detect(kept, options, wm.size()).value();
      match += MatchWatermark(wm, detection.wm).match_fraction;
    }
    return match / 5.0;
  };

  Relation base = StandardRelation();
  const EmbedReport embed_report =
      Embedder(keys, params).Embed(base, KA(), wm).value();
  const double without = detect_after_loss(base, embed_report.payload_length);

  Relation boosted = base;
  const FitTupleInjector injector(keys, params);
  InjectionConfig config;
  config.padd = 0.10;
  ASSERT_TRUE(injector.Inject(boosted, KA(), wm, config).ok());
  const double with = detect_after_loss(boosted, embed_report.payload_length);

  EXPECT_GE(with + 1e-9, without);
}

TEST(InjectionTest, RejectsBadConfig) {
  Relation rel = StandardRelation(500);
  const FitTupleInjector injector(WatermarkKeySet::FromSeed(8),
                                  WatermarkParams{});
  InjectionConfig config;
  config.padd = -0.1;
  EXPECT_FALSE(injector.Inject(rel, KA(), MakeWatermark(10, 8), config).ok());
  config.padd = 0.1;
  EXPECT_FALSE(injector.Inject(rel, KA(), BitVector(), config).ok());
  Relation empty(rel.schema());
  EXPECT_FALSE(
      injector.Inject(empty, KA(), MakeWatermark(10, 8), config).ok());
}

TEST(InjectionTest, StringKeysSupported) {
  Relation rel(Schema::Create({{"K", ColumnType::kString, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  for (int i = 0; i < 2000; ++i) {
    rel.AppendRowUnchecked({Value("key" + std::to_string(i)),
                            Value(i % 2 ? "x" : "y")});
  }
  const FitTupleInjector injector(WatermarkKeySet::FromSeed(9),
                                  WatermarkParams{});
  InjectionConfig config;
  config.padd = 0.02;
  const InjectionReport report =
      injector.Inject(rel, KA(), MakeWatermark(10, 9), config).value();
  EXPECT_EQ(report.tuples_added, 40u);
}

}  // namespace
}  // namespace catmark
