#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

struct MarkedSource {
  Relation rel;
  WatermarkKeySet keys;
  BitVector wm;
  EmbedReport report;
};

MarkedSource MakeSource(std::uint64_t seed, const WatermarkParams& params) {
  MarkedSource s;
  KeyedCategoricalConfig gen;
  gen.num_tuples = 10000;
  gen.domain_size = 100;
  gen.seed = seed;
  s.rel = GenerateKeyedCategorical(gen);
  s.keys = WatermarkKeySet::FromSeed(seed);
  s.wm = MakeWatermark(10, seed);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  s.report = Embedder(s.keys, params).Embed(s.rel, options, s.wm).value();
  return s;
}

double MatchOn(const Relation& suspect, const MarkedSource& source,
               const WatermarkParams& params) {
  const Detector detector(source.keys, params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = source.report.payload_length;
  options.domain = source.report.domain;
  const DetectionResult detection =
      detector.Detect(suspect, options, source.wm.size()).value();
  return MatchWatermark(source.wm, detection.wm).match_fraction;
}

TEST(MixAndMatchTest, PreservesSizeAndSchema) {
  WatermarkParams params;
  params.e = 30;
  const MarkedSource a = MakeSource(131, params);
  const MarkedSource b = MakeSource(132, params);
  const Relation mixed = MixAndMatchAttack(a.rel, b.rel, 0.5, 1).value();
  EXPECT_EQ(mixed.NumRows(), 10000u);
  EXPECT_TRUE(mixed.schema() == a.rel.schema());
}

TEST(MixAndMatchTest, BothMarksSurviveDiluted) {
  // Mixing behaves like subset selection toward each owner: both marks
  // remain detectable, which means mixing *doubles* Mallory's legal
  // exposure rather than hiding him.
  WatermarkParams params;
  params.e = 30;
  const MarkedSource a = MakeSource(133, params);
  const MarkedSource b = MakeSource(134, params);
  const Relation mixed = MixAndMatchAttack(a.rel, b.rel, 0.5, 2).value();
  EXPECT_GE(MatchOn(mixed, a, params), 0.9);
  EXPECT_GE(MatchOn(mixed, b, params), 0.9);
}

TEST(MixAndMatchTest, LopsidedMixFavorsTheBiggerSource) {
  WatermarkParams params;
  params.e = 60;
  const MarkedSource a = MakeSource(135, params);
  const MarkedSource b = MakeSource(136, params);
  const Relation mixed = MixAndMatchAttack(a.rel, b.rel, 0.9, 3).value();
  EXPECT_GE(MatchOn(mixed, a, params), MatchOn(mixed, b, params) - 1e-9);
}

TEST(MixAndMatchTest, RejectsBadInput) {
  WatermarkParams params;
  const MarkedSource a = MakeSource(137, params);
  SalesGenConfig sales;
  sales.num_tuples = 100;
  const Relation other_schema = GenerateItemScan(sales);
  EXPECT_FALSE(MixAndMatchAttack(a.rel, other_schema, 0.5, 4).ok());
  EXPECT_FALSE(MixAndMatchAttack(a.rel, a.rel, 1.5, 4).ok());
}

TEST(MixAndMatchTest, DeterministicPerSeed) {
  WatermarkParams params;
  const MarkedSource a = MakeSource(138, params);
  const MarkedSource b = MakeSource(139, params);
  EXPECT_TRUE(MixAndMatchAttack(a.rel, b.rel, 0.3, 5)
                  .value()
                  .SameContent(MixAndMatchAttack(a.rel, b.rel, 0.3, 5).value()));
}

}  // namespace
}  // namespace catmark
