// End-to-end integration tests spanning generator -> quality-constrained
// embedding -> CSV round trip -> attacks -> blind detection: the workflows a
// data owner would actually run.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/catmark.h"
#include "exp/harness.h"

namespace catmark {
namespace {

TEST(IntegrationTest, OwnerPipelineOnItemScan) {
  // 1. The owner's data: an ItemScan sample.
  SalesGenConfig gen;
  gen.num_tuples = 8000;
  gen.num_items = 300;
  gen.seed = 81;
  Relation data = GenerateItemScan(gen);

  // 2. Embed under quality constraints.
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("wal-mart");
  WatermarkParams params;
  params.e = 40;
  const BitVector wm = MakeWatermark(10, 81);

  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.05));
  assessor.AddPlugin(std::make_unique<HistogramDriftPlugin>("Item_Nbr", 0.10));
  ASSERT_TRUE(assessor.Begin(data).ok());

  EmbedOptions options;
  options.key_attr = "Visit_Nbr";
  options.target_attr = "Item_Nbr";
  const Embedder embedder(keys, params);
  const EmbedReport report =
      embedder.Embed(data, options, wm, &assessor).value();
  EXPECT_GT(report.altered_tuples, 0u);
  EXPECT_LE(report.alteration_fraction, 0.05);

  // 3. The marked data ships as CSV and comes back.
  const std::string path = ::testing::TempDir() + "/itemscan_marked.csv";
  ASSERT_TRUE(WriteCsvFile(data, path).ok());
  const Relation shipped = ReadCsvFile(path, data.schema()).value();
  std::remove(path.c_str());

  // 4. Blind detection on the shipped copy.
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "Visit_Nbr";
  detect_options.target_attr = "Item_Nbr";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  const DetectionResult detection =
      detector.Detect(shipped, detect_options, wm.size()).value();
  EXPECT_EQ(detection.wm, wm);
  const MatchStats stats = MatchWatermark(wm, detection.wm);
  EXPECT_LT(stats.false_match_probability, 1e-2);
}

TEST(IntegrationTest, CombinedAttackGauntlet) {
  // Mallory chains A4 + A2 + A3 + A1: re-sort, add 20%, alter 20%, keep 60%.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 12000;
  gen.domain_size = 200;
  gen.seed = 82;
  Relation data = GenerateKeyedCategorical(gen);

  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(82);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 82);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(data, options, wm).value();

  Relation attacked = ResortAttack(data, 1);
  attacked = SubsetAdditionAttack(attacked, 0.2, 2).value();
  attacked = SubsetAlterationAttack(attacked, "A", 0.2, 3).value();
  attacked = HorizontalPartitionAttack(attacked, 0.6, 4).value();

  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  const DetectionResult detection =
      detector.Detect(attacked, detect_options, wm.size()).value();
  const MatchStats stats = MatchWatermark(wm, detection.wm);
  EXPECT_GE(stats.match_fraction, 0.8)
      << "mark should survive the combined gauntlet";
}

TEST(IntegrationTest, MultiChannelDefenseInDepth) {
  // Key-based multi-attribute channels + frequency-domain channel together:
  // whichever projection Mallory keeps, some witness testifies.
  SalesGenConfig gen;
  gen.num_tuples = 24000;
  gen.num_items = 120;
  gen.item_zipf_s = 1.0;
  gen.seed = 83;
  Relation data = GenerateItemScan(gen);

  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(83);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 83);

  const MultiAttributeEmbedder multi(keys, params);
  const auto pairs = PlanPairClosure(data).value();
  const MultiEmbedReport multi_report =
      multi.EmbedAll(data, pairs, wm).value();

  FreqMarkParams freq_params;
  freq_params.quantization_step = 0.02;
  const FrequencyMarker freq(keys.k1, freq_params);
  const BitVector freq_wm = MakeWatermark(8, 84);
  ASSERT_TRUE(freq.Embed(data, "Item_Nbr", freq_wm).ok());

  // Partition 1: two categorical columns, no key.
  {
    const Relation part =
        VerticalPartitionAttack(data, {"Item_Nbr", "Dept_Desc"}).value();
    const auto detections =
        multi.DetectAll(part, pairs, wm.size(),
                        multi_report.passes[0].report.payload_length)
            .value();
    ASSERT_FALSE(detections.empty());
    const BitVector combined =
        MultiAttributeEmbedder::CombineDetections(detections, wm.size());
    EXPECT_GE(MatchWatermark(wm, combined).match_fraction, 0.7);
  }

  // Partition 2 (extreme): Item_Nbr alone — only the frequency channel
  // survives.
  {
    const Relation part = VerticalPartitionAttack(data, {"Item_Nbr"}).value();
    const FreqDetectReport detect =
        freq.Detect(part, "Item_Nbr", freq_wm.size()).value();
    EXPECT_GE(MatchWatermark(freq_wm, detect.wm).match_fraction, 7.0 / 8.0);
  }
}

TEST(IntegrationTest, CourtCaseNumbers) {
  // The rights-claim math the paper takes to court: detection of the
  // owner's mark with overwhelming confidence, near-chance match for a
  // party holding wrong keys.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 6000;
  gen.domain_size = 500;
  gen.seed = 85;
  Relation data = GenerateKeyedCategorical(gen);

  const WatermarkKeySet owner = WatermarkKeySet::FromPassphrase("owner");
  const WatermarkKeySet impostor = WatermarkKeySet::FromPassphrase("impostor");
  WatermarkParams params;
  params.e = 60;
  const BitVector wm = MakeWatermark(16, 85);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(owner, params).Embed(data, options, wm).value();

  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;

  const DetectionResult owner_detection =
      Detector(owner, params).Detect(data, detect_options, wm.size()).value();
  const MatchStats owner_stats = MatchWatermark(wm, owner_detection.wm);
  EXPECT_EQ(owner_stats.matched_bits, wm.size());
  EXPECT_LT(owner_stats.false_match_probability, 1e-4);  // (1/2)^16

  const DetectionResult impostor_detection =
      Detector(impostor, params)
          .Detect(data, detect_options, wm.size())
          .value();
  const MatchStats impostor_stats = MatchWatermark(wm, impostor_detection.wm);
  EXPECT_LT(impostor_stats.matched_bits, wm.size());
}

TEST(IntegrationTest, IncrementalUpdatesStayDetectable) {
  // Section 4.3: as updates occur, new tuples are evaluated on the fly for
  // fitness and watermarked accordingly; detection keeps working.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 6000;
  gen.domain_size = 100;
  gen.seed = 86;
  Relation data = GenerateKeyedCategorical(gen);

  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(86);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 86);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(data, options, wm).value();

  // New batch arrives; watermark it with the same keys/payload length and
  // append (the injector implements exactly the on-the-fly rule).
  KeyedCategoricalConfig more;
  more.num_tuples = 2000;
  more.domain_size = 100;
  more.seed = 87;
  Relation batch = GenerateKeyedCategorical(more);
  WatermarkParams batch_params = params;
  batch_params.payload_length = report.payload_length;
  ASSERT_TRUE(Embedder(keys, batch_params)
                  .Embed(batch, options, wm)
                  .ok());
  ASSERT_TRUE(AppendAll(data, batch).ok());

  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  const DetectionResult detection =
      detector.Detect(data, detect_options, wm.size()).value();
  EXPECT_EQ(detection.wm, wm);
}

}  // namespace
}  // namespace catmark
