// Contract tests of the .catm v1 on-disk format. The serialized image is
// part of the deployment surface — marked datasets get archived in this
// format and must load byte-for-byte forever — so the golden image below is
// pinned at the hex level, round-trips must be exact (dead dictionary
// entries included), the parallel converter must be thread-count invariant,
// and hostile bytes must fail with a clean Status: the corruption sweep
// flips every single byte and tries every truncation of the golden image.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>

#include "core/embedder.h"
#include "crypto/sha256.h"
#include "gen/sales_gen.h"
#include "relation/catm_format.h"
#include "relation/catm_io.h"
#include "relation/csv.h"
#include "relation/relation.h"

namespace catmark {
namespace {

std::string ToHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

void PutLeU64(std::string& bytes, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void PutBeU64(std::string& bytes, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * (7 - i))) & 0xFF);
  }
}

Schema TinySchema() {
  return Schema::Create({{"K", ColumnType::kInt64, false},
                         {"A", ColumnType::kString, true}},
                        "K")
      .value();
}

/// Three rows over (K INT64 PK, A STRING CATEGORICAL): dict {x=0, y=1},
/// live {2, 1}, codes {0, 1, 0}. Small enough that the full image is
/// pinnable as hex and the byte-flip sweep stays cheap.
Relation TinyRelation() {
  Relation rel(TinySchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value(std::string("x"))});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value(std::string("y"))});
  rel.AppendRowUnchecked({Value(std::int64_t{3}), Value(std::string("x"))});
  return rel;
}

// --- golden image ---------------------------------------------------------

// The full .catm image of TinyRelation(). Regenerating this constant is a
// conscious format break: every archived .catm file in the field stops
// loading under a reader that disagrees with it.
constexpr const char* kTinyGoldenHex =
    // magic            version    meta_len   meta_checksum
    "894341544d0d0a1a" "01000000" "3c000000" "1752e252d19756b8"
    // num_rows=3       num_cols   pk_index=0
    "0300000000000000" "02000000" "00000000"
    // schema: "K" INT64 plain, "A" STRING categorical
    "01004b0000" "0100410201"
    // section table: K plain @100 len 27, A dict @127 len 76 (+ checksums)
    "02" "6400000000000000" "1b00000000000000" "a3d3c6a7a1e1f0f0"
    "01" "7f00000000000000" "4c00000000000000" "2efe2f64e135fa6b"
    // plain K section: values 1, 2, 3 (tag 0x01 + big-endian payload)
    "010000000000000001" "010000000000000002" "010000000000000003"
    // dict A section: count=2; offsets {0, 10, 20}; blob {"x", "y"}
    // (tag 0x03 + big-endian length + bytes); live {2, 1}; codes {0, 1, 0}
    "02000000" "0000000000000000" "0a00000000000000" "1400000000000000"
    "03000000000000000178" "03000000000000000179"
    "0200000000000000" "0100000000000000" "00000000" "01000000" "00000000";

TEST(CatmGoldenTest, ImageIsByteStable) {
  EXPECT_EQ(ToHex(WriteCatmString(TinyRelation())), kTinyGoldenHex);
}

TEST(CatmGoldenTest, HeaderAndSectionLayout) {
  const std::string bytes = WriteCatmString(TinyRelation());
  ASSERT_GE(bytes.size(), kCatmHeaderSize);
  const std::string_view view(bytes);

  EXPECT_EQ(std::memcmp(bytes.data(), kCatmMagic, sizeof(kCatmMagic)), 0);

  ByteReader r(view.substr(sizeof(kCatmMagic)));
  std::uint32_t version = 0;
  std::uint32_t meta_length = 0;
  std::uint64_t meta_checksum = 0;
  std::uint64_t num_rows = 0;
  std::uint32_t num_columns = 0;
  std::int32_t pk_index = 0;
  ASSERT_TRUE(r.ReadLeU32(version));
  ASSERT_TRUE(r.ReadLeU32(meta_length));
  ASSERT_TRUE(r.ReadLeU64(meta_checksum));
  ASSERT_TRUE(r.ReadLeU64(num_rows));
  ASSERT_TRUE(r.ReadLeU32(num_columns));
  ASSERT_TRUE(r.ReadLeI32(pk_index));

  EXPECT_EQ(version, kCatmVersion);
  EXPECT_EQ(num_rows, 3u);
  EXPECT_EQ(num_columns, 2u);
  EXPECT_EQ(pk_index, 0);
  // kCatmMetaPerColumn covers everything per column but the name bytes
  // themselves; the two column names ("K", "A") are one byte each.
  EXPECT_EQ(meta_length, 1 + 1 + 2 * kCatmMetaPerColumn);
  // The meta checksum covers counts + schema + section table.
  EXPECT_EQ(meta_checksum,
            CatmChecksum(view.substr(kCatmChecksumStart, 16 + meta_length)));

  // Section table: entries are contiguous from the end of the meta block
  // and cover the rest of the file exactly, each checksummed.
  std::uint64_t expect_offset = kCatmHeaderSize + meta_length;
  for (std::size_t c = 0; c < num_columns; ++c) {
    // Skip this column's schema entry (name_len + name + type + cat).
    std::uint16_t name_len = 0;
    ASSERT_TRUE(r.ReadLeU16(name_len));
    ASSERT_TRUE(r.Skip(name_len + 2));
  }
  for (std::size_t c = 0; c < num_columns; ++c) {
    std::uint8_t kind = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint64_t checksum = 0;
    ASSERT_TRUE(r.ReadU8(kind));
    ASSERT_TRUE(r.ReadLeU64(offset));
    ASSERT_TRUE(r.ReadLeU64(length));
    ASSERT_TRUE(r.ReadLeU64(checksum));
    EXPECT_EQ(kind, c == 0 ? kCatmSectionPlain : kCatmSectionDict);
    EXPECT_EQ(offset, expect_offset);
    EXPECT_EQ(checksum, CatmChecksum(view.substr(offset, length)));
    expect_offset += length;
  }
  EXPECT_EQ(expect_offset, bytes.size()) << "sections must cover the file";
}

// --- round trips ----------------------------------------------------------

TEST(CatmRoundTripTest, ExactIncludingDeadDictEntries) {
  Relation rel = TinyRelation();
  // A dictionary entry no row references (embedding can strand these when
  // the last row holding a category is rewritten) must survive verbatim —
  // dropping it would renumber codes and change the image.
  const std::int32_t dead =
      rel.mutable_store().InternValue(1, Value(std::string("zombie")));
  ASSERT_EQ(rel.store().DictLiveCounts(1)[static_cast<std::size_t>(dead)], 0);

  const std::string bytes = WriteCatmString(rel);
  Result<Relation> back = ReadCatmString(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_TRUE(back->schema() == rel.schema());
  EXPECT_EQ(back->store().Codes(1), rel.store().Codes(1));
  EXPECT_EQ(back->store().Dict(1), rel.store().Dict(1));
  EXPECT_EQ(back->store().DictLiveCounts(1), rel.store().DictLiveCounts(1));
  EXPECT_EQ(back->store().PlainValues(0), rel.store().PlainValues(0));
  EXPECT_TRUE(back->SameContent(rel));
  // write(read(write(x))) == write(x): the image is a fixpoint.
  EXPECT_EQ(WriteCatmString(*back), bytes);
}

TEST(CatmRoundTripTest, EveryValueTypeAndNull) {
  const Schema schema =
      Schema::Create({{"I", ColumnType::kInt64, false},
                      {"D", ColumnType::kDouble, false},
                      {"S", ColumnType::kString, false},
                      {"C", ColumnType::kString, true}},
                     "")
          .value();
  Relation rel(schema);
  rel.AppendRowUnchecked({Value(std::int64_t{-1}), Value(0.5),
                          Value(std::string("a,b\"c\nd")),
                          Value(std::string("red"))});
  rel.AppendRowUnchecked({Value(), Value(), Value(), Value()});
  rel.AppendRowUnchecked(
      {Value(std::numeric_limits<std::int64_t>::min()), Value(-0.0),
       Value(std::string()), Value(std::string("red"))});

  Result<Relation> back = ReadCatmString(WriteCatmString(rel));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(back->SameContent(rel));
  // NULL round-trips as NULL (unlike CSV, which conflates it with ""), and
  // -0.0 keeps its sign bit: the encoding is the exact bit pattern.
  EXPECT_TRUE(back->Get(1, 2).is_null());
  EXPECT_TRUE(std::signbit(back->Get(2, 1).AsDouble()));
}

TEST(CatmRoundTripTest, ExpectedSchemaMismatchIsInvalidArgument) {
  const std::string bytes = WriteCatmString(TinyRelation());
  const Schema other = Schema::Create({{"K", ColumnType::kInt64, false},
                                       {"B", ColumnType::kString, true}},
                                      "K")
                           .value();
  const Result<Relation> r = ReadCatmString(bytes, other);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

// --- converter determinism ------------------------------------------------

TEST(CatmConvertTest, ParallelIngestIsThreadCountInvariant) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 3000;
  gen.domain_size = 40;
  gen.seed = 99;
  const Relation rel = GenerateKeyedCategorical(gen);
  const std::string csv = WriteCsvString(rel);

  Result<Relation> serial = ReadCsvString(csv, rel.schema());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string want = WriteCatmString(*serial);
  // The serial parse assigns codes in first-occurrence order — the same
  // order the generator appended in, so the original image matches too.
  EXPECT_EQ(WriteCatmString(rel), want);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    Result<Relation> got = ReadCsvStringParallel(csv, rel.schema(), threads);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(WriteCatmString(*got), want)
        << "converter output depends on thread count " << threads;
  }
}

// --- corruption -----------------------------------------------------------

TEST(CatmCorruptionTest, TruncationIsDataLoss) {
  const std::string bytes = WriteCatmString(TinyRelation());
  for (const std::size_t keep : {std::size_t{10}, bytes.size() - 1}) {
    const Result<Relation> r =
        ReadCatmString(std::string_view(bytes).substr(0, keep));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  }
}

TEST(CatmCorruptionTest, SectionByteFlipIsDataLoss) {
  std::string bytes = WriteCatmString(TinyRelation());
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  const Result<Relation> r = ReadCatmString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
}

TEST(CatmCorruptionTest, BadMagicIsInvalidArgument) {
  std::string bytes = WriteCatmString(TinyRelation());
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);
  const Result<Relation> r = ReadCatmString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST(CatmCorruptionTest, UnsupportedVersionIsInvalidArgument) {
  std::string bytes = WriteCatmString(TinyRelation());
  bytes[8] = 2;  // version field, little-endian u32 at offset 8
  const Result<Relation> r = ReadCatmString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST(CatmCorruptionTest, EverySingleByteFlipFailsToParse) {
  // Whole-file integrity: the meta checksum covers the counts, schema and
  // section table (which embeds the per-section checksums); the magic,
  // version and meta_length fields are structurally validated. So there is
  // no byte whose corruption goes unnoticed.
  const std::string bytes = WriteCatmString(TinyRelation());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    const Result<Relation> r = ReadCatmString(mutated);
    EXPECT_FALSE(r.ok()) << "flip at byte " << i << " parsed successfully";
  }
}

TEST(CatmCorruptionTest, HostileDictOffsetsWithValidChecksumsAreRejected) {
  // A crafted file can carry any offsets array behind *valid* (unkeyed)
  // checksums, so the byte-flip sweep above never reaches this path — every
  // flip dies on a checksum first. Regression for an out-of-bounds read:
  // offsets [0, 2^32, blob_len] satisfy the endpoint checks, and the first
  // blob entry claims a ~4 GiB string, so a loader that interleaves the
  // monotonicity check with decoding builds a reader far past the section
  // and copies attacker-chosen lengths out of unmapped memory.
  std::string bytes = WriteCatmString(TinyRelation());
  const std::string_view view(bytes);

  std::uint32_t meta_length = 0;
  std::uint32_t num_columns = 0;
  {
    ByteReader r(view.substr(12));
    ASSERT_TRUE(r.ReadLeU32(meta_length));
  }
  {
    ByteReader r(view.substr(32));
    ASSERT_TRUE(r.ReadLeU32(num_columns));
  }
  ASSERT_EQ(num_columns, 2u);

  // Section-table entry of the dict column ("A", column 1). Entries are
  // kind(1) + offset(8) + length(8) + checksum(8) at the meta block's tail.
  constexpr std::size_t kEntryBytes = 1 + 8 + 8 + 8;
  const std::size_t table_pos =
      kCatmHeaderSize + meta_length - num_columns * kEntryBytes;
  const std::size_t entry_pos = table_pos + kEntryBytes;
  std::uint8_t kind = 0;
  std::uint64_t sec_off = 0;
  std::uint64_t sec_len = 0;
  {
    ByteReader r(view.substr(entry_pos));
    ASSERT_TRUE(r.ReadU8(kind));
    ASSERT_TRUE(r.ReadLeU64(sec_off));
    ASSERT_TRUE(r.ReadLeU64(sec_len));
  }
  ASSERT_EQ(kind, kCatmSectionDict);

  // Dict section: u32 dict_count, u64 offsets[3], then the blob whose first
  // entry is tag byte + big-endian u64 string length.
  const auto sec = static_cast<std::size_t>(sec_off);
  const std::uint64_t huge = std::uint64_t{1} << 32;
  PutLeU64(bytes, sec + 4 + 8, huge);       // offsets[1]
  PutBeU64(bytes, sec + 4 + 3 * 8 + 1, huge - 9);  // blob[0] string length
  // Re-seal the file: section checksum in the table entry, then the meta
  // checksum that covers the table.
  PutLeU64(bytes, entry_pos + 1 + 8 + 8,
           CatmChecksum(std::string_view(bytes).substr(
               sec, static_cast<std::size_t>(sec_len))));
  PutLeU64(bytes, 16,
           CatmChecksum(std::string_view(bytes).substr(kCatmChecksumStart,
                                                       16 + meta_length)));

  const Result<Relation> r = ReadCatmString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST(CatmCorruptionTest, EveryTruncationFailsToParse) {
  const std::string bytes = WriteCatmString(TinyRelation());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const Result<Relation> r =
        ReadCatmString(std::string_view(bytes).substr(0, keep));
    EXPECT_FALSE(r.ok()) << "truncation to " << keep << " bytes parsed";
  }
}

// --- install API validation ----------------------------------------------

TEST(CatmInstallTest, RejectsDuplicateDictionaryEntries) {
  Relation rel(TinySchema());
  const Status s = rel.mutable_store().InstallDictColumn(
      1, {Value(std::string("x")), Value(std::string("x"))}, {1, 1}, {0, 1});
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(CatmInstallTest, RejectsCodeOutOfRange) {
  Relation rel(TinySchema());
  const Status s = rel.mutable_store().InstallDictColumn(
      1, {Value(std::string("x"))}, {1}, {0, 7});
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(CatmInstallTest, RejectsLiveCountMismatch) {
  Relation rel(TinySchema());
  const Status s = rel.mutable_store().InstallDictColumn(
      1, {Value(std::string("x"))}, {5}, {0, 0});
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(CatmInstallTest, FinalizeRejectsRowCountMismatch) {
  Relation rel(TinySchema());
  ASSERT_TRUE(rel.mutable_store()
                  .InstallPlainColumn(0, {Value(std::int64_t{1})})
                  .ok());
  ASSERT_TRUE(rel.mutable_store()
                  .InstallDictColumn(1, {Value(std::string("x"))}, {2},
                                     {0, 0})
                  .ok());
  EXPECT_TRUE(rel.mutable_store().FinalizeInstall(2).IsInvalidArgument());
}

// --- file I/O and sniffing ------------------------------------------------

TEST(CatmIoTest, LoadRelationSniffsContentNotExtension) {
  const Relation rel = TinyRelation();
  const std::string catm_path =
      ::testing::TempDir() + "catm_sniff_binary.dat";
  const std::string csv_path = ::testing::TempDir() + "catm_sniff_text.dat";
  ASSERT_TRUE(WriteCatmFile(rel, catm_path).ok());
  ASSERT_TRUE(WriteCsvFile(rel, csv_path).ok());

  // Same neutral ".dat" extension for both: only the content differs, and
  // LoadRelation must dispatch on the magic, not the name.
  Result<Relation> from_catm = LoadRelation(catm_path, rel.schema());
  ASSERT_TRUE(from_catm.ok()) << from_catm.status().ToString();
  EXPECT_TRUE(from_catm->SameContent(rel));

  Result<Relation> from_csv = LoadRelation(csv_path, rel.schema());
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  EXPECT_TRUE(from_csv->SameContent(rel));

  std::remove(catm_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CatmIoTest, SaveRelationPicksFormatByExtension) {
  const Relation rel = TinyRelation();
  const std::string catm_path = ::testing::TempDir() + "catm_save_test.catm";
  const std::string csv_path = ::testing::TempDir() + "catm_save_test.csv";
  ASSERT_TRUE(SaveRelation(rel, catm_path).ok());
  ASSERT_TRUE(SaveRelation(rel, csv_path).ok());

  const FileBytes catm_bytes = FileBytes::Open(catm_path).value();
  const FileBytes csv_bytes = FileBytes::Open(csv_path).value();
  EXPECT_TRUE(LooksLikeCatm(catm_bytes.view()));
  EXPECT_FALSE(LooksLikeCatm(csv_bytes.view()));
  EXPECT_EQ(catm_bytes.view(), WriteCatmString(rel));
  EXPECT_EQ(csv_bytes.view(), WriteCsvString(rel));

  std::remove(catm_path.c_str());
  std::remove(csv_path.c_str());
}

// --- cross-format golden pins ---------------------------------------------

// The .catm round trip must preserve the exact embed/detect channel: the
// pinned hashes below are the same constants golden_test.cc pins for the
// CSV path, so a .catm loader that perturbed codes or dictionary order —
// even content-preservingly — would fail here.

TEST(CatmCrossFormatTest, RoundTripPreservesGoldenGeneratorHash) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 64;
  gen.seed = 424242;
  const Relation rel = GenerateKeyedCategorical(gen);
  Result<Relation> back = ReadCatmString(WriteCatmString(rel));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(*back)).ToHex(),
      "a74968c3b53d067b5bf36f885cadf48e6c8ec835c801cd26b51b6cba8084a0a8");
}

TEST(CatmCrossFormatTest, EmbeddingOnRoundTrippedRelationIsPinned) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 64;
  gen.seed = 424242;
  const Relation rel = GenerateKeyedCategorical(gen);
  Result<Relation> back = ReadCatmString(WriteCatmString(rel));
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  const struct {
    PrfKind prf;
    const char* pinned;
  } kCases[] = {
      {PrfKind::kKeyedHash,
       "cdc9fcdcdc04480afcdb7338d8c67512911da1251e3ce1e57be25df5903c2e82"},
      {PrfKind::kSipHash24,
       "d325634b623a545ca00b353945cf90dd2f06ca31b9f47fc44d372f13fa2fc690"},
  };
  for (const auto& kase : kCases) {
    Relation marked = *back;
    const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("golden");
    WatermarkParams params;
    params.e = 25;
    params.prf = kase.prf;
    const BitVector wm = BitVector::FromString("1011001110").value();
    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    Result<EmbedReport> report =
        Embedder(keys, params).Embed(marked, options, wm);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    Sha256 sha;
    EXPECT_EQ(sha.Hash(WriteCsvString(marked)).ToHex(), kase.pinned)
        << "embedding over the .catm round trip diverged under "
        << PrfKindName(kase.prf);
  }
}

}  // namespace
}  // namespace catmark
