#include <gtest/gtest.h>

#include <cmath>

#include "core/decision.h"
#include "random/stats.h"
#include "exp/harness.h"

namespace catmark {
namespace {

TEST(ThresholdTest, MatchesClosedFormForPerfectRequirement) {
  // For alpha just above (1/2)^n, only a perfect match suffices.
  EXPECT_EQ(RequiredMatchThreshold(10, 1.1 * std::pow(0.5, 10)), 10u);
}

TEST(ThresholdTest, UnreachableAlphaSignalsTooShortMark) {
  // alpha below (1/2)^n cannot be met even by a perfect match.
  EXPECT_EQ(RequiredMatchThreshold(8, 0.5 * std::pow(0.5, 8)), 9u);
}

TEST(ThresholdTest, LooseAlphaLowersBar) {
  const std::size_t strict = RequiredMatchThreshold(32, 1e-6);
  const std::size_t loose = RequiredMatchThreshold(32, 0.05);
  EXPECT_LT(loose, strict);
  EXPECT_GT(loose, 16u);  // still better than chance
}

// The pre-optimization reference: probe every candidate m with a full
// binomial tail evaluation (O(len^2) log-gamma calls). The shipping
// implementation accumulates the tail in one descending pass; this sweep
// pins its thresholds to the reference across lengths and significances.
std::size_t ReferenceThreshold(std::size_t wm_len, double alpha) {
  for (std::size_t m = 0; m <= wm_len; ++m) {
    if (BinomialTailAtLeast(wm_len, m, 0.5) <= alpha) return m;
  }
  return wm_len + 1;
}

TEST(ThresholdTest, IncrementalTailMatchesReferenceSweep) {
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{8},
        std::size_t{16}, std::size_t{31}, std::size_t{64}, std::size_t{100},
        std::size_t{128}, std::size_t{257}, std::size_t{512}}) {
    for (const double alpha : {0.3, 0.05, 1e-2, 1e-3, 1e-6, 1e-9}) {
      EXPECT_EQ(RequiredMatchThreshold(len, alpha),
                ReferenceThreshold(len, alpha))
          << "len=" << len << " alpha=" << alpha;
    }
  }
}

TEST(ThresholdTest, ThresholdActuallyMeetsAlpha) {
  for (const double alpha : {1e-2, 1e-4, 1e-6}) {
    const std::size_t m = RequiredMatchThreshold(64, alpha);
    ASSERT_LE(m, 64u);
    // Tail at the threshold is within alpha; one bit lower is not.
    EXPECT_LE(BinomialTailAtLeast(64, m, 0.5), alpha);
    EXPECT_GT(BinomialTailAtLeast(64, m - 1, 0.5), alpha);
  }
}

TEST(DecideOwnershipTest, PerfectMatchOwns) {
  const BitVector wm = MakeWatermark(16, 1);
  const OwnershipDecision d = DecideOwnership(wm, wm);
  EXPECT_TRUE(d.owned);
  EXPECT_EQ(d.matched_bits, 16u);
  EXPECT_NEAR(d.p_value, std::pow(0.5, 16), 1e-12);
}

TEST(DecideOwnershipTest, RandomMarkDoesNotOwn) {
  const BitVector wm = MakeWatermark(16, 2);
  const BitVector other = MakeWatermark(16, 3);
  const OwnershipDecision d = DecideOwnership(wm, other);
  EXPECT_FALSE(d.owned);
}

TEST(DecideOwnershipTest, SlightDamageStillOwns) {
  const BitVector wm = MakeWatermark(32, 4);
  BitVector damaged = wm;
  damaged.Flip(0);
  damaged.Flip(7);
  const OwnershipDecision d = DecideOwnership(wm, damaged, 1e-4);
  EXPECT_TRUE(d.owned);  // 30/32 matches is far beyond chance
  EXPECT_EQ(d.matched_bits, 30u);
  EXPECT_LT(d.p_value, 1e-4);
}

TEST(DecideOwnershipTest, ReportsThresholdAndSignificance) {
  const BitVector wm = MakeWatermark(16, 5);
  const OwnershipDecision d = DecideOwnership(wm, wm, 1e-3);
  EXPECT_EQ(d.significance, 1e-3);
  EXPECT_EQ(d.threshold, RequiredMatchThreshold(16, 1e-3));
}

}  // namespace
}  // namespace catmark
