#include <gtest/gtest.h>

#include <set>

#include "attack/attacks.h"
#include "gen/sales_gen.h"
#include "relation/domain.h"

namespace catmark {
namespace {

Relation SmallRelation() {
  KeyedCategoricalConfig config;
  config.num_tuples = 1000;
  config.domain_size = 20;
  config.seed = 5;
  return GenerateKeyedCategorical(config);
}

// ------------------------------------------------------------ A1 horizontal

TEST(HorizontalPartitionTest, KeepsRequestedFraction) {
  const Relation rel = SmallRelation();
  const Relation kept = HorizontalPartitionAttack(rel, 0.3, 1).value();
  EXPECT_EQ(kept.NumRows(), 300u);
  EXPECT_TRUE(kept.schema() == rel.schema());
}

TEST(HorizontalPartitionTest, KeptRowsComeFromOriginal) {
  const Relation rel = SmallRelation();
  std::set<std::int64_t> original_keys;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    original_keys.insert(rel.Get(i, 0).AsInt64());
  }
  const Relation kept = HorizontalPartitionAttack(rel, 0.5, 2).value();
  for (std::size_t i = 0; i < kept.NumRows(); ++i) {
    EXPECT_TRUE(original_keys.count(kept.Get(i, 0).AsInt64()) > 0);
  }
}

TEST(HorizontalPartitionTest, RejectsBadFraction) {
  EXPECT_FALSE(HorizontalPartitionAttack(SmallRelation(), -0.1, 3).ok());
  EXPECT_FALSE(HorizontalPartitionAttack(SmallRelation(), 1.1, 3).ok());
}

TEST(HorizontalPartitionTest, DeterministicPerSeed) {
  const Relation rel = SmallRelation();
  EXPECT_TRUE(HorizontalPartitionAttack(rel, 0.4, 7).value().SameContent(
      HorizontalPartitionAttack(rel, 0.4, 7).value()));
}

// -------------------------------------------------------------- A2 addition

TEST(SubsetAdditionTest, AddsRequestedFraction) {
  const Relation rel = SmallRelation();
  const Relation out = SubsetAdditionAttack(rel, 0.2, 4).value();
  EXPECT_EQ(out.NumRows(), 1200u);
}

TEST(SubsetAdditionTest, AddedKeysAreFresh) {
  const Relation rel = SmallRelation();
  const Relation out = SubsetAdditionAttack(rel, 0.5, 5).value();
  std::set<std::int64_t> keys;
  for (std::size_t i = 0; i < out.NumRows(); ++i) {
    EXPECT_TRUE(keys.insert(out.Get(i, 0).AsInt64()).second)
        << "duplicate key after addition attack";
  }
}

TEST(SubsetAdditionTest, AddedValuesComeFromExistingDomain) {
  const Relation rel = SmallRelation();
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const Relation out = SubsetAdditionAttack(rel, 0.3, 6).value();
  for (std::size_t i = rel.NumRows(); i < out.NumRows(); ++i) {
    EXPECT_TRUE(domain.Contains(out.Get(i, 1)));
  }
}

TEST(SubsetAdditionTest, ZeroAdditionIsIdentity) {
  const Relation rel = SmallRelation();
  EXPECT_TRUE(SubsetAdditionAttack(rel, 0.0, 7).value().SameContent(rel));
}

TEST(SubsetAdditionTest, RejectsNegativeAndEmpty) {
  EXPECT_FALSE(SubsetAdditionAttack(SmallRelation(), -0.5, 8).ok());
  Relation empty(SmallRelation().schema());
  EXPECT_FALSE(SubsetAdditionAttack(empty, 0.1, 8).ok());
}

// ------------------------------------------------------------ A3 alteration

TEST(SubsetAlterationTest, AltersRequestedFraction) {
  const Relation rel = SmallRelation();
  const Relation out =
      SubsetAlterationAttack(rel, "A", 0.5, 9, AlterationMode::kForceDifferent)
          .value();
  ASSERT_EQ(out.NumRows(), rel.NumRows());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (!(out.Get(i, 1) == rel.Get(i, 1))) ++changed;
  }
  EXPECT_EQ(changed, 500u);
}

TEST(SubsetAlterationTest, UniformModeMayKeepValue) {
  const Relation rel = SmallRelation();
  const Relation out =
      SubsetAlterationAttack(rel, "A", 1.0, 10, AlterationMode::kUniformRandom)
          .value();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (!(out.Get(i, 1) == rel.Get(i, 1))) ++changed;
  }
  // Uniform redraw keeps the old value with probability ~f(old); far from
  // all tuples change, but most do.
  EXPECT_LT(changed, 1000u);
  EXPECT_GT(changed, 800u);
}

TEST(SubsetAlterationTest, NewValuesStayInDomain) {
  const Relation rel = SmallRelation();
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const Relation out = SubsetAlterationAttack(rel, "A", 0.7, 11).value();
  for (std::size_t i = 0; i < out.NumRows(); ++i) {
    EXPECT_TRUE(domain.Contains(out.Get(i, 1)));
  }
}

TEST(SubsetAlterationTest, KeysUntouched) {
  const Relation rel = SmallRelation();
  const Relation out = SubsetAlterationAttack(rel, "A", 1.0, 12).value();
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    EXPECT_EQ(out.Get(i, 0).AsInt64(), rel.Get(i, 0).AsInt64());
  }
}

TEST(SubsetAlterationTest, RejectsBadInput) {
  EXPECT_FALSE(SubsetAlterationAttack(SmallRelation(), "A", 1.5, 13).ok());
  EXPECT_FALSE(SubsetAlterationAttack(SmallRelation(), "NOPE", 0.5, 13).ok());
}

// --------------------------------------------------------------- A4 resort

TEST(ResortTest, PermutesButPreservesContent) {
  const Relation rel = SmallRelation();
  const Relation out = ResortAttack(rel, 14);
  EXPECT_TRUE(rel.SameContent(out));
  bool moved = false;
  for (std::size_t i = 0; i < rel.NumRows() && !moved; ++i) {
    if (!(out.Get(i, 0) == rel.Get(i, 0))) moved = true;
  }
  EXPECT_TRUE(moved);
}

// ------------------------------------------------------------- A5 vertical

TEST(VerticalPartitionTest, DropsColumns) {
  const Relation rel = SmallRelation();
  const Relation out = VerticalPartitionAttack(rel, {"A"}).value();
  EXPECT_EQ(out.schema().num_columns(), 1u);
  EXPECT_FALSE(out.schema().has_primary_key());
  EXPECT_EQ(out.NumRows(), rel.NumRows());
}

TEST(VerticalPartitionTest, KeepingPkPreservesIt) {
  const Relation out =
      VerticalPartitionAttack(SmallRelation(), {"K", "A"}).value();
  EXPECT_TRUE(out.schema().has_primary_key());
}

// ---------------------------------------------------------------- A6 remap

TEST(BijectiveRemapTest, RemapsConsistently) {
  const Relation rel = SmallRelation();
  const RemapAttackResult result = BijectiveRemapAttack(rel, "A", 15).value();
  ASSERT_EQ(result.relation.NumRows(), rel.NumRows());
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    const std::string original = rel.Get(i, 1).ToString();
    const std::string remapped = result.relation.Get(i, 1).AsString();
    EXPECT_EQ(result.ground_truth.forward.at(original), remapped);
  }
}

TEST(BijectiveRemapTest, MappingIsBijective) {
  const Relation rel = SmallRelation();
  const RemapAttackResult result = BijectiveRemapAttack(rel, "A", 16).value();
  std::set<std::string> images;
  for (const auto& [from, to] : result.ground_truth.forward) {
    EXPECT_TRUE(images.insert(to).second) << "two values mapped to " << to;
  }
}

TEST(BijectiveRemapTest, NewLabelsAreOutsideOriginalDomain) {
  const Relation rel = SmallRelation();
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const RemapAttackResult result = BijectiveRemapAttack(rel, "A", 17).value();
  for (std::size_t i = 0; i < result.relation.NumRows(); ++i) {
    EXPECT_FALSE(domain.Contains(result.relation.Get(i, 1)));
  }
}

TEST(BijectiveRemapTest, FrequenciesArePreserved) {
  // The remapping only renames categories; the frequency multiset must be
  // identical — that is exactly what the Section 4.5 recovery relies on.
  const Relation rel = SmallRelation();
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const RemapAttackResult result = BijectiveRemapAttack(rel, "A", 18).value();
  const auto new_domain =
      CategoricalDomain::FromRelationColumn(result.relation, 1).value();
  EXPECT_EQ(new_domain.size(), domain.size());
}

TEST(BijectiveRemapTest, WorksOnIntegerColumns) {
  SalesGenConfig config;
  config.num_tuples = 500;
  config.num_items = 30;
  const Relation rel = GenerateItemScan(config);
  const RemapAttackResult result =
      BijectiveRemapAttack(rel, "Item_Nbr", 19).value();
  // Remapped column becomes STRING.
  const int col = result.relation.schema().ColumnIndex("Item_Nbr");
  ASSERT_GE(col, 0);
  EXPECT_EQ(result.relation.schema().column(static_cast<std::size_t>(col)).type,
            ColumnType::kString);
}

}  // namespace
}  // namespace catmark
