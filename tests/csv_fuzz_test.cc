// Seeded fuzz-style sweep of the CSV reader/writer: randomly generated
// relations with adversarial string content must round-trip exactly.

#include <gtest/gtest.h>

#include <string>

#include "random/rng.h"
#include "relation/csv.h"
#include "relation/relation.h"

namespace catmark {
namespace {

/// Characters chosen to stress the quoting logic.
constexpr char kAlphabet[] =
    "abcXYZ019 ,\"'\n\r;|\\\t=%$\xc3\xa9";  // includes UTF-8 bytes

std::string RandomString(Xoshiro256ss& rng, std::size_t max_len) {
  const std::size_t len = rng.NextBounded(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

Relation RandomRelation(std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const Schema schema =
      Schema::Create({{"K", ColumnType::kInt64, false},
                      {"S", ColumnType::kString, true},
                      {"D", ColumnType::kDouble, false},
                      {"T", ColumnType::kString, false}},
                     "K")
          .value();
  Relation rel(schema);
  const std::size_t rows = 1 + rng.NextBounded(200);
  for (std::size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(rng.NextBool(0.05)
                      ? Value()
                      : Value(static_cast<std::int64_t>(rng.Next())));
    row.push_back(rng.NextBool(0.05) ? Value()
                                     : Value(RandomString(rng, 24)));
    row.push_back(rng.NextBool(0.05)
                      ? Value()
                      : Value(static_cast<double>(rng.NextBounded(1u << 20)) /
                              64.0));
    row.push_back(Value(RandomString(rng, 8)));
    rel.AppendRowUnchecked(std::move(row));
  }
  return rel;
}

class CsvFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzzTest, RoundTripsExactly) {
  const Relation rel = RandomRelation(GetParam());
  const std::string csv = WriteCsvString(rel);
  Result<Relation> back = ReadCsvString(csv, rel.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // NULL strings round-trip as empty strings (CSV cannot tell them apart),
  // so compare cell-by-cell with that equivalence.
  ASSERT_EQ(back->NumRows(), rel.NumRows());
  for (std::size_t r = 0; r < rel.NumRows(); ++r) {
    for (std::size_t c = 0; c < rel.schema().num_columns(); ++c) {
      const Value& a = rel.Get(r, c);
      const Value& b = back->Get(r, c);
      if (a.is_string() && a.AsString().empty()) {
        EXPECT_TRUE(b.is_null() || (b.is_string() && b.AsString().empty()));
      } else {
        EXPECT_EQ(a, b) << "row " << r << " col " << c;
      }
    }
  }
}

TEST_P(CsvFuzzTest, DoubleWriteIsStable) {
  // write(read(write(x))) == write(x): the serialized form is a fixpoint.
  const Relation rel = RandomRelation(GetParam() ^ 0xF00D);
  const std::string once = WriteCsvString(rel);
  const Relation back = ReadCsvString(once, rel.schema()).value();
  EXPECT_EQ(WriteCsvString(back), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace catmark
