// Seeded fuzz-style sweep of the relation formats: randomly generated
// relations with adversarial string content must round-trip exactly through
// CSV, through the .catm binary image (byte-identically, embed channel
// included), and through the chunked parallel CSV reader at every thread
// count — and randomly corrupted .catm bytes must fail with a clean Status,
// never a crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/embedder.h"
#include "random/rng.h"
#include "relation/catm_io.h"
#include "relation/csv.h"
#include "relation/relation.h"

namespace catmark {
namespace {

/// Characters chosen to stress the quoting logic.
constexpr char kAlphabet[] =
    "abcXYZ019 ,\"'\n\r;|\\\t=%$\xc3\xa9";  // includes UTF-8 bytes

std::string RandomString(Xoshiro256ss& rng, std::size_t max_len) {
  const std::size_t len = rng.NextBounded(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

Relation RandomRelation(std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const Schema schema =
      Schema::Create({{"K", ColumnType::kInt64, false},
                      {"S", ColumnType::kString, true},
                      {"D", ColumnType::kDouble, false},
                      {"T", ColumnType::kString, false}},
                     "K")
          .value();
  Relation rel(schema);
  const std::size_t rows = 1 + rng.NextBounded(200);
  for (std::size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(rng.NextBool(0.05)
                      ? Value()
                      : Value(static_cast<std::int64_t>(rng.Next())));
    row.push_back(rng.NextBool(0.05) ? Value()
                                     : Value(RandomString(rng, 24)));
    row.push_back(rng.NextBool(0.05)
                      ? Value()
                      : Value(static_cast<double>(rng.NextBounded(1u << 20)) /
                              64.0));
    row.push_back(Value(RandomString(rng, 8)));
    rel.AppendRowUnchecked(std::move(row));
  }
  return rel;
}

class CsvFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzzTest, RoundTripsExactly) {
  const Relation rel = RandomRelation(GetParam());
  const std::string csv = WriteCsvString(rel);
  Result<Relation> back = ReadCsvString(csv, rel.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // NULL strings round-trip as empty strings (CSV cannot tell them apart),
  // so compare cell-by-cell with that equivalence.
  ASSERT_EQ(back->NumRows(), rel.NumRows());
  for (std::size_t r = 0; r < rel.NumRows(); ++r) {
    for (std::size_t c = 0; c < rel.schema().num_columns(); ++c) {
      const Value& a = rel.Get(r, c);
      const Value& b = back->Get(r, c);
      if (a.is_string() && a.AsString().empty()) {
        EXPECT_TRUE(b.is_null() || (b.is_string() && b.AsString().empty()));
      } else {
        EXPECT_EQ(a, b) << "row " << r << " col " << c;
      }
    }
  }
}

TEST_P(CsvFuzzTest, DoubleWriteIsStable) {
  // write(read(write(x))) == write(x): the serialized form is a fixpoint.
  const Relation rel = RandomRelation(GetParam() ^ 0xF00D);
  const std::string once = WriteCsvString(rel);
  const Relation back = ReadCsvString(once, rel.schema()).value();
  EXPECT_EQ(WriteCsvString(back), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- .catm format fuzz ----------------------------------------------------

/// Random relation over a random schema. Always embeddable: column 0 is an
/// INT64 key "K" with distinct non-null values, column 1 a categorical
/// string "A" whose first rows pin at least two distinct labels; 0-3 extra
/// columns of random type/kind (adversarial content included) follow.
Relation RandomSchemaRelation(std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Column> cols = {{"K", ColumnType::kInt64, false},
                              {"A", ColumnType::kString, true}};
  const std::size_t extra = rng.NextBounded(4);
  for (std::size_t i = 0; i < extra; ++i) {
    const ColumnType type = static_cast<ColumnType>(rng.NextBounded(3));
    cols.push_back({"X" + std::to_string(i), type, rng.NextBool(0.5)});
  }
  Relation rel(Schema::Create(cols, "K").value());

  const std::size_t labels = 2 + rng.NextBounded(6);
  const std::size_t rows = 30 + rng.NextBounded(170);
  for (std::size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value(static_cast<std::int64_t>(1000 + r)));
    // First `labels` rows pin one label each so the domain has >= 2 values.
    const std::size_t label = r < labels ? r : rng.NextBounded(labels);
    row.push_back(Value("L" + std::to_string(label)));
    for (std::size_t i = 0; i < extra; ++i) {
      if (rng.NextBool(0.1)) {
        row.push_back(Value());
        continue;
      }
      switch (cols[2 + i].type) {
        case ColumnType::kInt64:
          row.push_back(Value(static_cast<std::int64_t>(rng.Next())));
          break;
        case ColumnType::kDouble:
          row.push_back(
              Value(static_cast<double>(rng.NextBounded(1u << 20)) / 64.0));
          break;
        case ColumnType::kString:
          row.push_back(Value(RandomString(rng, 16)));
          break;
      }
    }
    rel.AppendRowUnchecked(std::move(row));
  }
  return rel;
}

class CatmFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CatmFuzzTest, RoundTripsByteIdentically) {
  const Relation rel = RandomSchemaRelation(GetParam());
  const std::string bytes = WriteCatmString(rel);
  Result<Relation> back = ReadCatmString(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->schema() == rel.schema());
  EXPECT_TRUE(back->SameContent(rel));
  EXPECT_EQ(WriteCatmString(*back), bytes);
}

TEST_P(CatmFuzzTest, RoundTripPreservesEmbedChannel) {
  // The loaded store must be equivalent down to the embed channel: marking
  // the round-tripped relation and the original produces byte-identical
  // results under both the compatibility and the fast PRF backend.
  const Relation rel = RandomSchemaRelation(GetParam() ^ 0xCA73);
  Result<Relation> back = ReadCatmString(WriteCatmString(rel));
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  for (const PrfKind prf : {PrfKind::kKeyedHash, PrfKind::kSipHash24}) {
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(GetParam());
    WatermarkParams params;
    params.e = 5;
    params.prf = prf;
    const BitVector wm = BitVector::FromString("1011001110").value();
    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";

    Relation marked_orig = rel;
    Relation marked_back = *back;
    Result<EmbedReport> r1 =
        Embedder(keys, params).Embed(marked_orig, options, wm);
    Result<EmbedReport> r2 =
        Embedder(keys, params).Embed(marked_back, options, wm);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(r1->altered_tuples, r2->altered_tuples);
    EXPECT_EQ(WriteCatmString(marked_orig), WriteCatmString(marked_back))
        << "embedding diverged after a .catm round trip under "
        << PrfKindName(prf);
  }
}

TEST_P(CatmFuzzTest, ParallelCsvReadMatchesSerialByteIdentically) {
  const Relation rel = RandomSchemaRelation(GetParam() ^ 0x9A11);
  const std::string csv = WriteCsvString(rel);
  Result<Relation> serial = ReadCsvString(csv, rel.schema());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string want = WriteCatmString(*serial);
  // Tiny inputs with explicit thread counts: every chunk-boundary edge case
  // (chunks smaller than a record, empty tail chunks) gets exercised.
  for (const std::size_t threads : {2u, 8u}) {
    Result<Relation> got = ReadCsvStringParallel(csv, rel.schema(), threads);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(WriteCatmString(*got), want)
        << "parallel CSV read diverged at " << threads << " threads";
  }
}

TEST_P(CatmFuzzTest, CorruptedBytesNeverCrash) {
  // Hostile-input sweep: random flips, truncations and splices. Every
  // mutation must either fail with a Status or — when it happens to leave
  // the image intact (e.g. a zero-length splice) — load the original
  // content. Run under ASan in CI, this is the no-crash guarantee.
  const Relation rel = RandomSchemaRelation(GetParam() ^ 0xDEAD);
  const std::string bytes = WriteCatmString(rel);
  Xoshiro256ss rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  for (int trial = 0; trial < 120; ++trial) {
    std::string mutated = bytes;
    switch (rng.NextBounded(3)) {
      case 0:  // flip 1-4 random bytes
        for (std::size_t f = 1 + rng.NextBounded(4); f > 0; --f) {
          const std::size_t pos = rng.NextBounded(mutated.size());
          mutated[pos] = static_cast<char>(rng.Next());
        }
        break;
      case 1:  // truncate
        mutated.resize(rng.NextBounded(mutated.size() + 1));
        break;
      case 2: {  // splice random bytes over a random range
        const std::size_t at = rng.NextBounded(mutated.size());
        const std::size_t len =
            std::min<std::size_t>(rng.NextBounded(64), mutated.size() - at);
        for (std::size_t i = 0; i < len; ++i) {
          mutated[at + i] = static_cast<char>(rng.Next());
        }
        break;
      }
    }
    const Result<Relation> r = ReadCatmString(mutated);
    if (r.ok()) {
      EXPECT_TRUE(r->SameContent(rel))
          << "a corrupted image parsed to different content";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatmFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace catmark
