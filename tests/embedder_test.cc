#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "quality/plugins.h"

namespace catmark {
namespace {

Relation StandardRelation(std::size_t n = 3000, std::uint64_t seed = 21) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = 100;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

EmbedOptions KA() {
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  return options;
}

TEST(EmbedderTest, ReportsFitTuplesNearNOverE) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 30;
  const Embedder embedder(WatermarkKeySet::FromSeed(1), params);
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 1)).value();
  const double expected = 3000.0 / 30.0;
  EXPECT_NEAR(static_cast<double>(report.fit_tuples), expected,
              4 * std::sqrt(expected));
  EXPECT_EQ(report.num_tuples, 3000u);
  EXPECT_EQ(report.payload_length, 100u);
}

TEST(EmbedderTest, AltersOnlyFitTuples) {
  const Relation original = StandardRelation();
  Relation rel = original;
  WatermarkParams params;
  params.e = 20;
  const Embedder embedder(WatermarkKeySet::FromSeed(2), params);
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 2)).value();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (!(rel.Get(i, 1) == original.Get(i, 1))) ++changed;
  }
  EXPECT_EQ(changed, report.altered_tuples);
  EXPECT_LE(report.altered_tuples, report.fit_tuples);
  EXPECT_EQ(report.altered_tuples + report.unchanged_tuples +
                report.skipped_by_domain_guard,
            report.fit_tuples);
}

TEST(EmbedderTest, DomainGuardKeepsEveryCategoryAlive) {
  // A relation where one category has a single occurrence: embedding must
  // not drain it (blind detection re-derives the domain from the data).
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  rel.AppendRowUnchecked({Value(std::int64_t{0}), Value("rare")});
  for (int i = 1; i < 2000; ++i) {
    rel.AppendRowUnchecked({Value(static_cast<std::int64_t>(i)),
                            Value(i % 2 ? "common1" : "common2")});
  }
  WatermarkParams params;
  params.e = 5;  // dense marking: without the guard "rare" would vanish
  const Embedder embedder(WatermarkKeySet::FromSeed(77), params);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  ASSERT_TRUE(embedder.Embed(rel, options, MakeWatermark(10, 77)).ok());
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_TRUE(domain.Contains(Value("rare")));
  EXPECT_EQ(domain.size(), 3u);
}

TEST(EmbedderTest, DomainGuardDisabledSkipsNothing) {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  for (int i = 0; i < 2000; ++i) {
    rel.AppendRowUnchecked({Value(static_cast<std::int64_t>(i)),
                            Value(i == 0 ? "rare" : (i % 2 ? "c1" : "c2"))});
  }
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";

  // Guard enabled (default): with e=1 every tuple is fit and the sole
  // "rare" occurrence must be protected at least once.
  {
    Relation copy = rel;
    WatermarkParams params;
    params.e = 1;
    const Embedder embedder(WatermarkKeySet::FromSeed(78), params);
    const EmbedReport report =
        embedder.Embed(copy, options, MakeWatermark(10, 78)).value();
    EXPECT_GT(report.skipped_by_domain_guard, 0u);
    const auto domain =
        CategoricalDomain::FromRelationColumn(copy, 1).value();
    EXPECT_TRUE(domain.Contains(Value("rare")));
  }

  // Guard disabled: nothing is skipped on its account.
  {
    Relation copy = rel;
    WatermarkParams params;
    params.e = 1;
    params.min_category_keep = 0;
    const Embedder embedder(WatermarkKeySet::FromSeed(78), params);
    const EmbedReport report =
        embedder.Embed(copy, options, MakeWatermark(10, 78)).value();
    EXPECT_EQ(report.skipped_by_domain_guard, 0u);
  }
}

TEST(EmbedderTest, AlterationFractionRoughlyOneOverE) {
  Relation rel = StandardRelation(6000);
  WatermarkParams params;
  params.e = 60;
  const Embedder embedder(WatermarkKeySet::FromSeed(3), params);
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 3)).value();
  // Roughly 1/e of tuples are touched (minus the already-correct ones).
  EXPECT_LT(report.alteration_fraction, 1.5 / 60.0);
  EXPECT_GT(report.alteration_fraction, 0.5 / 60.0);
}

TEST(EmbedderTest, KeysUntouchedAndOnlyTargetColumnModified) {
  const Relation original = StandardRelation();
  Relation rel = original;
  const Embedder embedder(WatermarkKeySet::FromSeed(4), WatermarkParams{});
  ASSERT_TRUE(embedder.Embed(rel, KA(), MakeWatermark(10, 4)).ok());
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    EXPECT_EQ(rel.Get(i, 0).AsInt64(), original.Get(i, 0).AsInt64());
  }
}

TEST(EmbedderTest, NewValuesStayInDomain) {
  Relation rel = StandardRelation();
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const Embedder embedder(WatermarkKeySet::FromSeed(5), WatermarkParams{});
  ASSERT_TRUE(embedder.Embed(rel, KA(), MakeWatermark(10, 5)).ok());
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    EXPECT_TRUE(domain.Contains(rel.Get(i, 1)));
  }
}

TEST(EmbedderTest, DeterministicPerKey) {
  Relation a = StandardRelation();
  Relation b = StandardRelation();
  const Embedder embedder(WatermarkKeySet::FromSeed(6), WatermarkParams{});
  const BitVector wm = MakeWatermark(10, 6);
  ASSERT_TRUE(embedder.Embed(a, KA(), wm).ok());
  ASSERT_TRUE(embedder.Embed(b, KA(), wm).ok());
  EXPECT_TRUE(a.SameContent(b));
}

TEST(EmbedderTest, DifferentKeysMarkDifferentTuples) {
  Relation a = StandardRelation();
  Relation b = StandardRelation();
  const BitVector wm = MakeWatermark(10, 7);
  ASSERT_TRUE(Embedder(WatermarkKeySet::FromSeed(7), WatermarkParams{})
                  .Embed(a, KA(), wm)
                  .ok());
  ASSERT_TRUE(Embedder(WatermarkKeySet::FromSeed(8), WatermarkParams{})
                  .Embed(b, KA(), wm)
                  .ok());
  EXPECT_FALSE(a.SameContent(b));
}

TEST(EmbedderTest, ExplicitDomainIsRespected) {
  Relation rel = StandardRelation();
  EmbedOptions options = KA();
  options.domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const Embedder embedder(WatermarkKeySet::FromSeed(9), WatermarkParams{});
  const EmbedReport report =
      embedder.Embed(rel, options, MakeWatermark(10, 9)).value();
  EXPECT_EQ(report.domain.size(), options.domain->size());
}

TEST(EmbedderTest, PayloadLengthOverride) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.payload_length = 64;
  const Embedder embedder(WatermarkKeySet::FromSeed(10), params);
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 10)).value();
  EXPECT_EQ(report.payload_length, 64u);
}

TEST(EmbedderTest, BuildsEmbeddingMap) {
  Relation rel = StandardRelation();
  EmbedOptions options = KA();
  options.build_embedding_map = true;
  const Embedder embedder(WatermarkKeySet::FromSeed(11), WatermarkParams{});
  const EmbedReport report =
      embedder.Embed(rel, options, MakeWatermark(10, 11)).value();
  // Exactly the committed tuples get map entries.
  EXPECT_EQ(report.embedding_map.size(),
            report.altered_tuples + report.unchanged_tuples);
  EXPECT_EQ(report.embedding_map.size(), report.fit_tuples);
}

// Regression: the embedding map used to record an entry (and consume a map
// index) *before* the ledger/quality/domain-guard checks, so vetoed tuples
// pointed the map-based detector at positions that were never written. Only
// committed tuples (altered or unchanged-hit) may appear in the map.
TEST(EmbedderTest, EmbeddingMapRecordsOnlyCommittedTuples) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 10;
  const Embedder embedder(WatermarkKeySet::FromSeed(24), params);
  EmbedOptions options = KA();
  options.build_embedding_map = true;
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.0));  // veto all
  ASSERT_TRUE(assessor.Begin(rel).ok());
  const EmbedReport report =
      embedder.Embed(rel, options, MakeWatermark(10, 24), &assessor).value();
  EXPECT_EQ(report.altered_tuples, 0u);
  EXPECT_GT(report.skipped_by_quality, 0u);
  EXPECT_EQ(report.embedding_map.size(), report.unchanged_tuples)
      << "vetoed tuples must not occupy embedding-map slots";
}

// Regression companion: with the map trimmed to committed tuples, every map
// hit at detect time is a usable vote on a genuinely written position.
TEST(EmbedderTest, EmbeddingMapDetectionVotesOnlyOnWrittenPositions) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 10;
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(25);
  const Embedder embedder(keys, params);
  EmbedOptions options = KA();
  options.build_embedding_map = true;
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.0));  // veto all
  ASSERT_TRUE(assessor.Begin(rel).ok());
  const BitVector wm = MakeWatermark(10, 25);
  const EmbedReport report =
      embedder.Embed(rel, options, wm, &assessor).value();

  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  detect_options.embedding_map = &report.embedding_map;
  const DetectionResult detection =
      detector.Detect(rel, detect_options, wm.size()).value();
  // Every map entry resolves to a committed (unchanged-hit) tuple, and all
  // of those carry the correct bit — so every present position agrees with
  // the payload that was embedded.
  EXPECT_EQ(detection.usable_votes, report.embedding_map.size());
  EXPECT_EQ(detection.positions_present, report.positions_written);
}

TEST(EmbedderTest, LedgerSkipsDoNotOccupyMapSlots) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 10;
  const Embedder embedder(WatermarkKeySet::FromSeed(26), params);
  EmbedOptions options = KA();
  options.build_embedding_map = true;
  EmbeddingLedger ledger;
  const BitVector wm = MakeWatermark(10, 26);
  const EmbedReport first =
      embedder.Embed(rel, options, wm, nullptr, &ledger).value();
  EXPECT_GT(first.embedding_map.size(), 0u);
  // Second pass over fully-marked cells: everything is ledger-skipped, so
  // the map must stay empty (it used to fill up with one entry per fit
  // tuple, all pointing at unwritten positions).
  const EmbedReport second =
      embedder.Embed(rel, options, wm, nullptr, &ledger).value();
  EXPECT_EQ(second.skipped_by_ledger, second.fit_tuples);
  EXPECT_EQ(second.embedding_map.size(), 0u);
}

TEST(EmbedderTest, NoMapByDefault) {
  Relation rel = StandardRelation();
  const Embedder embedder(WatermarkKeySet::FromSeed(12), WatermarkParams{});
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 12)).value();
  EXPECT_TRUE(report.embedding_map.empty());
}

// ------------------------------------------------------------- error paths

TEST(EmbedderTest, RejectsEmptyWatermark) {
  Relation rel = StandardRelation();
  const Embedder embedder(WatermarkKeySet::FromSeed(13), WatermarkParams{});
  EXPECT_FALSE(embedder.Embed(rel, KA(), BitVector()).ok());
}

TEST(EmbedderTest, RejectsUnknownAttributes) {
  Relation rel = StandardRelation();
  const Embedder embedder(WatermarkKeySet::FromSeed(14), WatermarkParams{});
  EmbedOptions options;
  options.key_attr = "NOPE";
  options.target_attr = "A";
  EXPECT_FALSE(embedder.Embed(rel, options, MakeWatermark(10, 14)).ok());
  options.key_attr = "K";
  options.target_attr = "NOPE";
  EXPECT_FALSE(embedder.Embed(rel, options, MakeWatermark(10, 14)).ok());
}

TEST(EmbedderTest, RejectsSameKeyAndTarget) {
  Relation rel = StandardRelation();
  const Embedder embedder(WatermarkKeySet::FromSeed(15), WatermarkParams{});
  EmbedOptions options;
  options.key_attr = "A";
  options.target_attr = "A";
  EXPECT_FALSE(embedder.Embed(rel, options, MakeWatermark(10, 15)).ok());
}

TEST(EmbedderTest, RejectsNonCategoricalTarget) {
  SalesGenConfig config;
  config.num_tuples = 100;
  Relation rel = GenerateItemScan(config);
  const Embedder embedder(WatermarkKeySet::FromSeed(16), WatermarkParams{});
  EmbedOptions options;
  options.key_attr = "Visit_Nbr";
  options.target_attr = "Sale_Amount";  // DOUBLE, not categorical
  EXPECT_FALSE(embedder.Embed(rel, options, MakeWatermark(10, 16)).ok());
}

TEST(EmbedderTest, RejectsSingleValueDomain) {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  for (int i = 0; i < 50; ++i) {
    rel.AppendRowUnchecked(
        {Value(static_cast<std::int64_t>(i)), Value("only")});
  }
  const Embedder embedder(WatermarkKeySet::FromSeed(17), WatermarkParams{});
  EXPECT_FALSE(embedder.Embed(rel, KA(), MakeWatermark(10, 17)).ok());
}

TEST(EmbedderTest, RejectsEmptyRelation) {
  Relation rel(StandardRelation().schema());
  const Embedder embedder(WatermarkKeySet::FromSeed(18), WatermarkParams{});
  EXPECT_FALSE(embedder.Embed(rel, KA(), MakeWatermark(10, 18)).ok());
}

// Regression: with e > N, DerivePayloadLength's N/e floors to 0 and used to
// be silently replaced by |wm| — embed "succeeded" with an expected fit
// count below one tuple. That is now an explicit precondition failure.
TEST(EmbedderTest, RejectsEExceedingRelationSize) {
  Relation rel = StandardRelation(50);
  WatermarkParams params;
  params.e = 100;
  const Embedder embedder(WatermarkKeySet::FromSeed(27), params);
  const Status status =
      embedder.Embed(rel, KA(), MakeWatermark(10, 27)).status();
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST(EmbedderTest, NullKeysAreSkipped) {
  Relation rel = StandardRelation(200);
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(rel.Set(i, 0, Value()).ok());
  }
  const Embedder embedder(WatermarkKeySet::FromSeed(19), WatermarkParams{});
  EXPECT_TRUE(embedder.Embed(rel, KA(), MakeWatermark(10, 19)).ok());
}

// ------------------------------------------------------------ ledger paths

TEST(EmbedderTest, LedgerSkipsMarkedCells) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 10;
  const Embedder embedder(WatermarkKeySet::FromSeed(20), params);
  EmbeddingLedger ledger;
  const BitVector wm = MakeWatermark(10, 20);
  const EmbedReport first = embedder.Embed(rel, KA(), wm, nullptr, &ledger).value();
  EXPECT_EQ(first.skipped_by_ledger, 0u);
  EXPECT_EQ(ledger.size(), first.fit_tuples);
  // Re-embedding over the same cells: everything is already marked.
  const EmbedReport second =
      embedder.Embed(rel, KA(), wm, nullptr, &ledger).value();
  EXPECT_EQ(second.skipped_by_ledger, second.fit_tuples);
  EXPECT_EQ(second.altered_tuples, 0u);
}

// ----------------------------------------------------------- quality paths

TEST(EmbedderTest, QualityVetoSkipsBits) {
  Relation rel = StandardRelation();
  WatermarkParams params;
  params.e = 10;
  const Embedder embedder(WatermarkKeySet::FromSeed(21), params);
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.0));  // veto all
  ASSERT_TRUE(assessor.Begin(rel).ok());
  const Relation before = rel;
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 21), &assessor).value();
  EXPECT_EQ(report.altered_tuples, 0u);
  EXPECT_EQ(report.skipped_by_quality,
            report.fit_tuples - report.unchanged_tuples);
  EXPECT_TRUE(rel.SameContent(before));
}

TEST(EmbedderTest, QualityBudgetPartiallyApplies) {
  Relation rel = StandardRelation(3000);
  WatermarkParams params;
  params.e = 10;  // ~300 fit tuples
  const Embedder embedder(WatermarkKeySet::FromSeed(22), params);
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.02));  // 60 max
  ASSERT_TRUE(assessor.Begin(rel).ok());
  const EmbedReport report =
      embedder.Embed(rel, KA(), MakeWatermark(10, 22), &assessor).value();
  EXPECT_LE(report.altered_tuples, 60u);
  EXPECT_GT(report.altered_tuples, 0u);
  EXPECT_GT(report.skipped_by_quality, 0u);
  EXPECT_EQ(assessor.accepted_count(), report.altered_tuples);
}

TEST(EmbedderTest, RollbackAllRestoresOriginal) {
  const Relation original = StandardRelation();
  Relation rel = original;
  const Embedder embedder(WatermarkKeySet::FromSeed(23), WatermarkParams{});
  QualityAssessor assessor;  // no plugins: everything accepted but logged
  ASSERT_TRUE(assessor.Begin(rel).ok());
  ASSERT_TRUE(
      embedder.Embed(rel, KA(), MakeWatermark(10, 23), &assessor).ok());
  EXPECT_FALSE(rel.SameContent(original));
  ASSERT_TRUE(assessor.RollbackAll(rel).ok());
  EXPECT_TRUE(rel.SameContent(original));
}

TEST(DerivePayloadLengthTest, FloorsAtWatermarkLength) {
  EXPECT_EQ(DerivePayloadLength(6000, 60, 10), 100u);
  EXPECT_EQ(DerivePayloadLength(100, 60, 10), 10u);   // N/e = 1 < |wm|
  EXPECT_EQ(DerivePayloadLength(0, 60, 10), 10u);
}

}  // namespace
}  // namespace catmark
