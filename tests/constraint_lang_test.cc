#include <gtest/gtest.h>

#include "quality/constraint_lang.h"
#include "quality/assessor.h"
#include "relation/relation.h"

namespace catmark {
namespace {

Schema TestSchema() {
  return Schema::Create({{"K", ColumnType::kInt64, false},
                         {"Dept", ColumnType::kString, true},
                         {"Store", ColumnType::kInt64, true}},
                        "K")
      .value();
}

Relation TestRelation() {
  Relation rel(TestSchema());
  const struct {
    const char* dept;
    std::int64_t store;
  } rows[] = {{"GROCERY", 1}, {"GROCERY", 1}, {"GROCERY", 2}, {"DAIRY", 1},
              {"DAIRY", 2},   {"TOYS", 2},    {"TOYS", 2},    {"TOYS", 2}};
  std::int64_t k = 0;
  for (const auto& r : rows) {
    rel.AppendRowUnchecked(
        {Value(k++), Value(std::string(r.dept)), Value(r.store)});
  }
  return rel;
}

// ----------------------------------------------------------------- parsing

TEST(ConstraintLangTest, CompilesEveryStatementKind) {
  QualityAssessor assessor;
  const char* source = R"(
    -- full constraint set for the sales feed
    MAX ALTERATIONS 2%;
    MAX DRIFT ON Dept 0.05;
    MIN COUNT ON Dept 1;
    FORBID ON Dept ('DISCONTINUED', 'RECALLED');
    PRESERVE COUNT WHERE Dept = 'GROCERY' TOLERANCE 5%;
    PRESERVE CONFIDENCE OF Dept = 'DAIRY' GIVEN Store = 2 TOLERANCE 10%;
  )";
  const Result<std::size_t> n =
      CompileConstraints(source, TestSchema(), assessor);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 6u);
  EXPECT_EQ(assessor.num_plugins(), 6u);
}

TEST(ConstraintLangTest, EmptySourceCompilesToNothing) {
  QualityAssessor assessor;
  EXPECT_EQ(CompileConstraints("", TestSchema(), assessor).value(), 0u);
  EXPECT_EQ(CompileConstraints("  -- just a comment\n", TestSchema(), assessor)
                .value(),
            0u);
}

TEST(ConstraintLangTest, KeywordsAreCaseInsensitive) {
  QualityAssessor assessor;
  EXPECT_TRUE(CompileConstraints("max alterations 5%;", TestSchema(), assessor)
                  .ok());
}

TEST(ConstraintLangTest, PercentAndDecimalAreEquivalent) {
  QualityAssessor a, b;
  ASSERT_TRUE(CompileConstraints("MAX ALTERATIONS 5%;", TestSchema(), a).ok());
  ASSERT_TRUE(
      CompileConstraints("MAX ALTERATIONS 0.05;", TestSchema(), b).ok());
  // Both must behave identically: budget floor(0.05 * 8) = 0 alterations
  // on the 8-row relation -> first proposal vetoed.
  Relation ra = TestRelation(), rb = TestRelation();
  ASSERT_TRUE(a.Begin(ra).ok());
  ASSERT_TRUE(b.Begin(rb).ok());
  EXPECT_EQ(a.ProposeAlteration(ra, 0, 1, Value("DAIRY")).code(),
            b.ProposeAlteration(rb, 0, 1, Value("DAIRY")).code());
}

TEST(ConstraintLangTest, IntegerLiteralAgainstStringColumnParses) {
  QualityAssessor assessor;
  // Dept is STRING; a bare number is accepted and parsed as a string.
  EXPECT_TRUE(
      CompileConstraints("FORBID ON Dept (123);", TestSchema(), assessor)
          .ok());
}

// ------------------------------------------------------------ parse errors

TEST(ConstraintLangTest, RejectsUnknownColumn) {
  QualityAssessor assessor;
  const auto r =
      CompileConstraints("MAX DRIFT ON Nope 0.1;", TestSchema(), assessor);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Nope"), std::string::npos);
}

TEST(ConstraintLangTest, RejectsUnknownStatement) {
  QualityAssessor assessor;
  EXPECT_FALSE(
      CompileConstraints("DELETE FROM Dept;", TestSchema(), assessor).ok());
}

TEST(ConstraintLangTest, RejectsMissingSemicolon) {
  QualityAssessor assessor;
  EXPECT_FALSE(
      CompileConstraints("MAX ALTERATIONS 2%", TestSchema(), assessor).ok());
}

TEST(ConstraintLangTest, RejectsUnterminatedString) {
  QualityAssessor assessor;
  EXPECT_FALSE(CompileConstraints("FORBID ON Dept ('OOPS);", TestSchema(),
                                  assessor)
                   .ok());
}

TEST(ConstraintLangTest, RejectsBadCharacter) {
  QualityAssessor assessor;
  EXPECT_FALSE(
      CompileConstraints("MAX ALTERATIONS @;", TestSchema(), assessor).ok());
}

TEST(ConstraintLangTest, ErrorsCarryLineNumbers) {
  QualityAssessor assessor;
  const auto r = CompileConstraints("MAX ALTERATIONS 1%;\nMAX NONSENSE;",
                                    TestSchema(), assessor);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

// ------------------------------------------------------- compiled behaviour

TEST(ConstraintLangTest, CompiledForbidVetoes) {
  QualityAssessor assessor;
  ASSERT_TRUE(CompileConstraints("FORBID ON Dept ('RECALLED');", TestSchema(),
                                 assessor)
                  .ok());
  Relation rel = TestRelation();
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("RECALLED"))
                  .IsConstraintViolation());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("DAIRY")).ok());
}

TEST(ConstraintLangTest, CompiledPreserveCountVetoes) {
  QualityAssessor assessor;
  ASSERT_TRUE(CompileConstraints(
                  "PRESERVE COUNT WHERE Dept = 'GROCERY' TOLERANCE 0.0;",
                  TestSchema(), assessor)
                  .ok());
  Relation rel = TestRelation();
  ASSERT_TRUE(assessor.Begin(rel).ok());
  // Moving a GROCERY row away changes the count -> veto at 0 tolerance.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("DAIRY"))
                  .IsConstraintViolation());
  // Swapping a TOYS row to DAIRY leaves the GROCERY count alone -> OK.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 5, 1, Value("DAIRY")).ok());
}

TEST(ConstraintLangTest, CompiledConfidenceVetoes) {
  QualityAssessor assessor;
  // Confidence of Dept=TOYS given Store=2 is 3/5; zero tolerance.
  ASSERT_TRUE(
      CompileConstraints("PRESERVE CONFIDENCE OF Dept = 'TOYS' GIVEN Store = "
                         "2 TOLERANCE 0.0;",
                         TestSchema(), assessor)
          .ok());
  Relation rel = TestRelation();
  ASSERT_TRUE(assessor.Begin(rel).ok());
  // Row 5 is (TOYS, 2): changing its Dept moves the confidence -> veto.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 5, 1, Value("DAIRY"))
                  .IsConstraintViolation());
  // Row 0 is (GROCERY, 1): irrelevant to the rule -> OK.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("DAIRY")).ok());
}

}  // namespace
}  // namespace catmark
