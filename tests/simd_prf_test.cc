// The multi-lane SipHash-2-4 backend: lane-by-lane pins against the
// published reference vectors, SIMD-vs-scalar bit-identity across random
// message lengths (including the fixed-width serialized-key shapes), the
// bounds-edge cases of the batch entry points, and end-to-end detect parity
// across forced dispatch levels x thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string_view>
#include <vector>

#include "common/bits.h"
#include "core/detect_engine.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "crypto/prf.h"
#include "crypto/siphash.h"
#include "crypto/siphash_simd.h"
#include "relation/value.h"
#include "test_util.h"

namespace catmark {
namespace {

// The reference-vector key 00 01 .. 0f split little-endian.
constexpr std::uint64_t kVecK0 = 0x0706050403020100ULL;
constexpr std::uint64_t kVecK1 = 0x0f0e0d0c0b0a0908ULL;

/// RAII dispatch override; restores the environment/hardware default.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { ForceSimdLevel(level); }
  ~ScopedSimdLevel() { ForceSimdLevel(std::nullopt); }
};

/// Every level this machine can actually run (always includes kScalar).
std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (HardwareSimdLevel() >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (HardwareSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

struct ArenaBatch {
  std::vector<std::uint8_t> arena;
  std::vector<std::size_t> bounds{0};
  std::vector<std::string_view> views;  // valid once the arena stops growing

  void Add(const std::vector<std::uint8_t>& msg) {
    arena.insert(arena.end(), msg.begin(), msg.end());
    bounds.push_back(arena.size());
  }
  std::size_t size() const { return bounds.size() - 1; }
  void BuildViews() {
    views.clear();
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      views.emplace_back(
          reinterpret_cast<const char*>(arena.data()) + bounds[i],
          bounds[i + 1] - bounds[i]);
    }
  }
};

// ------------------------------------------------------- reference vectors

// Each of the 16 published vectors (key 00..0f, message bytes 00..i-1) must
// come out of every lane position, at every dispatch level: the batch holds
// the 16 messages plus rotations, so every (length, lane) pairing occurs.
TEST(SimdSipHashTest, ReferenceVectorsLaneByLane) {
  const std::uint64_t kExpected[16] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
      0x9e0082df0ba9e4b0ULL, 0x7a5dbbc594ddb9f3ULL, 0xf4b32f46226bada7ULL,
      0x751e8fbc860ee5fbULL, 0x14ea5627c0843d90ULL, 0xf723ca908e7af2eeULL,
      0xa129ca6149be45e5ULL,
  };
  std::vector<std::uint8_t> message(16);
  for (int i = 0; i < 16; ++i) message[i] = static_cast<std::uint8_t>(i);

  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    // rot shifts which lane each length lands in, so a lane-crossing bug
    // (swapped set_epi64x order, wrong tail lane) cannot hide.
    for (std::size_t rot = 0; rot < 16; ++rot) {
      ArenaBatch batch;
      std::vector<std::size_t> lens;
      for (std::size_t i = 0; i < 16; ++i) {
        const std::size_t len = (i + rot) % 16;
        batch.Add(std::vector<std::uint8_t>(message.begin(),
                                            message.begin() + len));
        lens.push_back(len);
      }
      std::vector<std::uint64_t> out(batch.size());
      SipHash24Batch(kVecK0, kVecK1, batch.arena.data(),
                     std::span<const std::size_t>(batch.bounds),
                     std::span<std::uint64_t>(out));
      for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(out[i], kExpected[lens[i]])
            << "level=" << SimdLevelName(level) << " rot=" << rot
            << " slot=" << i << " len=" << lens[i];
      }
    }
  }
}

// --------------------------------------------------- SIMD-vs-scalar parity

// Random message lengths 0..128 — covering the 4-byte dict-code shape, the
// 9-byte serialized-int64 shape, and both sides of every 8-byte block
// boundary — must hash bit-identically to the scalar reference at every
// dispatch level, through all three batch entry points.
TEST(SimdSipHashTest, RandomLengthBatchesMatchScalar) {
  std::mt19937_64 rng(2024);
  ArenaBatch batch;
  // Deterministic coverage first (every length 0..128 twice, so each
  // bucket also exercises a partial flush), then random fill.
  std::vector<std::size_t> lengths;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::size_t len = 0; len <= 128; ++len) lengths.push_back(len);
  }
  for (int i = 0; i < 1500; ++i) {
    lengths.push_back(rng() % 129);
  }
  for (const std::size_t len : lengths) {
    std::vector<std::uint8_t> msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
    batch.Add(msg);
  }
  batch.BuildViews();

  std::vector<std::uint64_t> expected(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expected[i] = SipHash24(kVecK0, kVecK1, batch.arena.data() + batch.bounds[i],
                            lengths[i]);
  }

  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    std::vector<std::uint64_t> out(batch.size());
    SipHash24Batch(kVecK0, kVecK1, batch.arena.data(),
                   std::span<const std::size_t>(batch.bounds),
                   std::span<std::uint64_t>(out));
    EXPECT_EQ(out, expected) << "arena form, level=" << SimdLevelName(level);

    std::fill(out.begin(), out.end(), 0);
    SipHash24Views(kVecK0, kVecK1,
                   std::span<const std::string_view>(batch.views),
                   std::span<std::uint64_t>(out));
    EXPECT_EQ(out, expected) << "views form, level=" << SimdLevelName(level);
  }
}

TEST(SimdSipHashTest, FixedStrideMatchesScalar) {
  std::mt19937_64 rng(77);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                                std::size_t{8}, std::size_t{9}, std::size_t{16},
                                std::size_t{33}, std::size_t{128}}) {
    // stride == len is the packed arena; the padded stride covers layouts
    // with per-message slack.
    for (const std::size_t stride : {len, len + 3}) {
      const std::size_t count = 101;
      std::vector<std::uint8_t> buf(count * stride + 16);
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
      std::vector<std::uint64_t> expected(count);
      for (std::size_t i = 0; i < count; ++i) {
        expected[i] = SipHash24(kVecK0, kVecK1, buf.data() + i * stride, len);
      }
      for (const SimdLevel level : RunnableLevels()) {
        ScopedSimdLevel forced(level);
        std::vector<std::uint64_t> out(count);
        SipHash24Fixed(kVecK0, kVecK1, buf.data(), len, stride,
                       std::span<std::uint64_t>(out));
        EXPECT_EQ(out, expected) << "level=" << SimdLevelName(level)
                                 << " len=" << len << " stride=" << stride;
      }
    }
  }
}

// The typed int64-key entry point never materializes the 9-byte record, so
// pin it against serialize + scalar SipHash for every level, every lane
// position (counts straddling the 8/4/scalar group boundaries), and the
// sign/extreme values where a byte-order bug would hide.
TEST(SimdSipHashTest, Int64KeysMatchSerializedScalar) {
  std::mt19937_64 rng(99);
  std::vector<std::int64_t> vals = {0,
                                    1,
                                    -1,
                                    std::numeric_limits<std::int64_t>::min(),
                                    std::numeric_limits<std::int64_t>::max(),
                                    42,
                                    -42,
                                    0x0102030405060708LL};
  for (int i = 0; i < 500; ++i) {
    vals.push_back(static_cast<std::int64_t>(rng()));
  }
  std::vector<std::uint64_t> expected(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    std::vector<std::uint8_t> bytes;
    Value(vals[i]).SerializeForHash(bytes);
    ASSERT_EQ(bytes.size(), 9u);
    expected[i] = SipHash24(kVecK0, kVecK1, bytes.data(), bytes.size());
  }
  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    for (const std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
          std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{13},
          std::size_t{64}, vals.size()}) {
      std::vector<std::uint64_t> out(count, 1);
      SipHash24Int64Keys(kVecK0, kVecK1, vals.data(), count,
                         std::span<std::uint64_t>(out));
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(out[i], expected[i])
            << "level=" << SimdLevelName(level) << " count=" << count
            << " i=" << i << " val=" << vals[i];
      }
    }
  }
}

// The packed fitness bitset must agree bit-for-bit with the scalar
// DivisibilityCheck at every level, for even/odd/power-of-two divisors and
// counts straddling the 64-hash word boundary; trailing bits of a partial
// last word must be zero.
TEST(SimdSipHashTest, DivisibilityMaskMatchesScalar) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> h(1000);
  for (auto& x : h) x = rng();
  // Plant guaranteed multiples so small divisors see plenty of set bits.
  for (std::size_t i = 0; i < h.size(); i += 3) h[i] = (rng() % 1000) * 60;
  for (const std::uint64_t d :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{4},
        std::uint64_t{6}, std::uint64_t{7}, std::uint64_t{12},
        std::uint64_t{60}, std::uint64_t{64}, std::uint64_t{97},
        std::uint64_t{255}, std::uint64_t{1} << 20}) {
    const DivisibilityCheck check(d);
    for (const std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{128}, std::size_t{200}, h.size()}) {
      std::vector<std::uint64_t> expected((count + 63) / 64, 0);
      for (std::size_t i = 0; i < count; ++i) {
        if (check(h[i])) expected[i / 64] |= std::uint64_t{1} << (i % 64);
      }
      for (const SimdLevel level : RunnableLevels()) {
        ScopedSimdLevel forced(level);
        std::vector<std::uint64_t> words((count + 63) / 64,
                                         ~std::uint64_t{0});
        DivisibilityMask64(check, h.data(), count, words.data());
        EXPECT_EQ(words, expected) << "level=" << SimdLevelName(level)
                                   << " d=" << d << " count=" << count;
      }
    }
  }
}

// Uniform-length arena batches take the fixed-stride shortcut inside
// SipHash24Batch; pin that path against the scalar loop explicitly.
TEST(SimdSipHashTest, UniformArenaMatchesScalar) {
  std::mt19937_64 rng(31);
  for (const std::size_t len : {std::size_t{4}, std::size_t{9}}) {
    ArenaBatch batch;
    for (int i = 0; i < 257; ++i) {
      std::vector<std::uint8_t> msg(len);
      for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
      batch.Add(msg);
    }
    std::vector<std::uint64_t> expected(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expected[i] = SipHash24(kVecK0, kVecK1,
                              batch.arena.data() + batch.bounds[i], len);
    }
    for (const SimdLevel level : RunnableLevels()) {
      ScopedSimdLevel forced(level);
      std::vector<std::uint64_t> out(batch.size());
      SipHash24Batch(kVecK0, kVecK1, batch.arena.data(),
                     std::span<const std::size_t>(batch.bounds),
                     std::span<std::uint64_t>(out));
      EXPECT_EQ(out, expected) << "level=" << SimdLevelName(level)
                               << " len=" << len;
    }
  }
}

// ------------------------------------------------------------- bounds edges

// The zero-message batch is the single bound {0} (the seed every arena
// producer starts from) and must be a no-op at every level, even with a
// null arena pointer — nothing may dereference it.
TEST(SimdSipHashTest, EmptyBatchEveryLevel) {
  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    const std::vector<std::size_t> bounds = {0};
    SipHash24Batch(kVecK0, kVecK1, nullptr,
                   std::span<const std::size_t>(bounds),
                   std::span<std::uint64_t>());
    SipHash24Fixed(kVecK0, kVecK1, nullptr, 0, 0, std::span<std::uint64_t>());
    SipHash24Views(kVecK0, kVecK1, std::span<const std::string_view>(),
                   std::span<std::uint64_t>());
  }
}

// Empty messages (bounds {0, 0, ...}) are legal inputs with a defined
// SipHash value; a full lane group of them must flush through the kernels.
TEST(SimdSipHashTest, EmptyMessagesEveryLevel) {
  const std::uint64_t expected = SipHash24(kVecK0, kVecK1, nullptr, 0);
  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    for (const std::size_t count : {std::size_t{1}, std::size_t{8},
                                    std::size_t{11}}) {
      const std::vector<std::size_t> bounds(count + 1, 0);
      const std::vector<std::uint8_t> arena;  // nothing to read
      std::vector<std::uint64_t> out(count, 1);
      SipHash24Batch(kVecK0, kVecK1, arena.data(),
                     std::span<const std::size_t>(bounds),
                     std::span<std::uint64_t>(out));
      for (const std::uint64_t h : out) EXPECT_EQ(h, expected);
    }
  }
}

// ------------------------------------------------------- dispatch controls

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSse2,
                                SimdLevel::kAvx2}) {
    const auto back = SimdLevelFromName(SimdLevelName(level));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, level);
  }
  EXPECT_EQ(SimdLevelFromName("scalar"), SimdLevel::kScalar);
  EXPECT_FALSE(SimdLevelFromName("avx512").has_value());
  EXPECT_FALSE(SimdLevelFromName("").has_value());
  EXPECT_FALSE(SimdLevelFromName("AVX2").has_value());  // case-sensitive
}

TEST(SimdDispatchTest, ForceClampsToHardwareAndRestores) {
  const SimdLevel ambient = ActiveSimdLevel();
  ForceSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(ActiveSimdLevel(), HardwareSimdLevel());
  ForceSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ForceSimdLevel(std::nullopt);
  EXPECT_EQ(ActiveSimdLevel(), ambient);
}

// --------------------------------------------- end-to-end detection parity

// A full embed -> detect cycle must produce the identical DetectionResult
// at every dispatch level x thread count, through both the one-shot
// detector and the multi-candidate engine. This is the bit-identity the
// siphash24 golden/attack suites rely on when CI runs them under
// CATMARK_SIMD=off|sse2|avx2.
TEST(SimdDetectParityTest, LevelsAndThreadsBitIdentical) {
  Relation rel = testutil::SmallKeyedRelation(1500, 30, 5);
  WatermarkParams params;
  params.e = 4;
  params.prf = PrfKind::kSipHash24;
  params.payload_length = 24;
  const WatermarkKeySet keys = testutil::TestKeys();
  const BitVector wm = testutil::TestWatermark(24);
  EmbedOptions embed_options;
  embed_options.key_attr = testutil::kKeyAttr;
  embed_options.target_attr = testutil::kTargetAttr;
  const Embedder embedder(keys, params);
  const EmbedReport report = embedder.Embed(rel, embed_options, wm).value();

  KeyCandidate candidate;
  candidate.keys = keys;
  candidate.params = params;
  candidate.wm_len = wm.size();

  std::optional<DetectionResult> baseline;
  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      WatermarkParams detect_params = params;
      detect_params.num_threads = threads;
      const Detector detector(keys, detect_params);
      DetectOptions options;
      options.key_attr = testutil::kKeyAttr;
      options.target_attr = testutil::kTargetAttr;
      options.domain = report.domain;
      const DetectionResult one_shot =
          detector.Detect(rel, options, wm.size()).value();
      EXPECT_EQ(one_shot.wm, wm) << "level=" << SimdLevelName(level);

      DetectEngineOptions engine_options;
      engine_options.key_attr = testutil::kKeyAttr;
      engine_options.target_attr = testutil::kTargetAttr;
      engine_options.domain = report.domain;
      engine_options.num_threads = threads;
      const DetectEngine engine =
          DetectEngine::Create(rel, engine_options).value();
      const DetectionResult engine_result = engine.Detect(candidate).value();

      for (const DetectionResult* r : {&one_shot, &engine_result}) {
        if (!baseline.has_value()) {
          baseline = *r;
          continue;
        }
        EXPECT_EQ(r->wm, baseline->wm);
        EXPECT_EQ(r->fit_tuples, baseline->fit_tuples);
        EXPECT_EQ(r->usable_votes, baseline->usable_votes);
        EXPECT_EQ(r->positions_present, baseline->positions_present);
        EXPECT_EQ(r->bit_confidence, baseline->bit_confidence)
            << "level=" << SimdLevelName(level) << " threads=" << threads;
      }
    }
  }
}

// NULL keys break the one-shot fast path's dense-chunk assumption mid-chunk
// (row indices must be backfilled the moment the first NULL appears), so
// pin a relation with scattered NULL keys to identical results across
// dispatch levels, thread counts, and against the plan-based engine path,
// which never had the dense shortcut.
TEST(SimdDetectParityTest, NullKeysBitIdenticalAcrossLevels) {
  const Relation base = testutil::SmallKeyedRelation(1200, 25, 9);
  Relation rel(base.schema());
  for (std::size_t j = 0; j < base.NumRows(); ++j) {
    Row row = {base.Get(j, 0), base.Get(j, 1)};
    if (j % 97 == 0) row[0] = Value();  // NULL key
    ASSERT_TRUE(rel.AppendRow(std::move(row)).ok());
  }

  WatermarkParams params;
  params.e = 4;
  params.prf = PrfKind::kSipHash24;
  params.payload_length = 16;
  const WatermarkKeySet keys = testutil::TestKeys();
  const BitVector wm = testutil::TestWatermark(16);
  EmbedOptions embed_options;
  embed_options.key_attr = testutil::kKeyAttr;
  embed_options.target_attr = testutil::kTargetAttr;
  const Embedder embedder(keys, params);
  const EmbedReport report = embedder.Embed(rel, embed_options, wm).value();

  KeyCandidate candidate;
  candidate.keys = keys;
  candidate.params = params;
  candidate.wm_len = wm.size();

  std::optional<DetectionResult> baseline;
  for (const SimdLevel level : RunnableLevels()) {
    ScopedSimdLevel forced(level);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      DetectEngineOptions options;
      options.key_attr = testutil::kKeyAttr;
      options.target_attr = testutil::kTargetAttr;
      options.domain = report.domain;
      options.num_threads = threads;
      const DetectionResult one_shot =
          DetectEngine::DetectOneShot(rel, options, candidate).value();
      const DetectEngine engine = DetectEngine::Create(rel, options).value();
      const DetectionResult planned = engine.Detect(candidate).value();
      for (const DetectionResult* r : {&one_shot, &planned}) {
        if (!baseline.has_value()) {
          baseline = *r;
          continue;
        }
        EXPECT_EQ(r->wm, baseline->wm)
            << "level=" << SimdLevelName(level) << " threads=" << threads;
        EXPECT_EQ(r->fit_tuples, baseline->fit_tuples);
        EXPECT_EQ(r->usable_votes, baseline->usable_votes);
        EXPECT_EQ(r->bit_confidence, baseline->bit_confidence);
      }
      EXPECT_EQ(one_shot.wm, wm) << "level=" << SimdLevelName(level);
    }
  }
}

}  // namespace
}  // namespace catmark
