// The batched / per-dict-code-cached plan build: for every PRF backend and
// thread count, the dict-code cache must be bit-identical to the uncached
// per-row batch path, the per-row batch path must be bit-identical to a
// one-value-at-a-time reference loop, and results must not depend on the
// worker count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/tuple_plan.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "test_util.h"

namespace catmark {
namespace {

constexpr PrfKind kBackends[] = {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                                 PrfKind::kSipHash24};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// (K INT64 plain key, C STRING categorical) with repeated categorical keys,
// NULL keys in both columns, and a dead dictionary entry — the shapes the
// two plan-build paths must agree on.
Relation MixedKeyRelation(std::size_t n) {
  Schema schema = Schema::Create({{"K", ColumnType::kInt64, false},
                                  {"C", ColumnType::kString, true},
                                  {"A", ColumnType::kString, true}},
                                 "")
                      .value();
  Relation rel(schema);
  for (std::size_t i = 0; i < n; ++i) {
    // ~47 distinct categorical keys; every 13th row has a NULL plain key,
    // every 17th a NULL categorical key.
    Value k = (i % 13 == 0) ? Value()
                            : Value(static_cast<std::int64_t>(i * 977));
    Value c = (i % 17 == 0) ? Value()
                            : Value("cat-" + std::to_string((i * 31) % 47));
    Value a = Value("v" + std::to_string(i % 5));
    rel.AppendRowUnchecked({std::move(k), std::move(c), std::move(a)});
  }
  // Interned but referenced by no row: the cache must skip it.
  rel.mutable_store().InternValue(1, Value("dead-entry"));
  return rel;
}

void ExpectPlansEqual(const TuplePlan& a, const TuplePlan& b,
                      const std::string& label) {
  EXPECT_EQ(a.fit, b.fit) << label;
  EXPECT_EQ(a.h1, b.h1) << label;
  EXPECT_EQ(a.payload_index, b.payload_index) << label;
  EXPECT_EQ(a.fit_count, b.fit_count) << label;
}

TuplePlanOptions PlanOptions(PrfKind prf, std::size_t threads,
                             bool use_dict_cache) {
  TuplePlanOptions options;
  options.payload_len = 64;
  options.with_payload_index = true;
  options.num_threads = threads;
  options.prf = prf;
  options.use_dict_cache = use_dict_cache;
  return options;
}

// The cross-backend property: for a dictionary-encoded key column the
// per-dict-code cache and the uncached per-row batch path must produce
// byte-identical plans, for every backend x thread count. e is small so a
// healthy share of rows is fit.
TEST(TuplePlanTest, DictCodeCacheIsBitIdenticalToUncachedPerRowPath) {
  const Relation rel = MixedKeyRelation(3000);
  const WatermarkKeySet keys = testutil::TestKeys();
  WatermarkParams params;
  params.e = 5;
  for (const PrfKind prf : kBackends) {
    for (const std::size_t threads : kThreadCounts) {
      const TuplePlan cached = BuildTuplePlan(
          rel, 1, keys, params, PlanOptions(prf, threads, true));
      const TuplePlan uncached = BuildTuplePlan(
          rel, 1, keys, params, PlanOptions(prf, threads, false));
      ExpectPlansEqual(cached, uncached,
                       std::string(PrfKindName(prf)) + " threads=" +
                           std::to_string(threads));
      EXPECT_EQ(cached.shard_fit, uncached.shard_fit);
      EXPECT_GT(cached.fit_count, 0u);
    }
  }
}

// Thread-count invariance of both paths (shard_fit differs by construction;
// the per-row fields must not).
TEST(TuplePlanTest, PlanIsThreadCountInvariant) {
  const Relation rel = MixedKeyRelation(3000);
  const WatermarkKeySet keys = testutil::TestKeys();
  WatermarkParams params;
  params.e = 5;
  for (const PrfKind prf : kBackends) {
    for (const std::size_t key_col : {std::size_t{0}, std::size_t{1}}) {
      const TuplePlan reference =
          BuildTuplePlan(rel, key_col, keys, params, PlanOptions(prf, 1, true));
      for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const TuplePlan plan = BuildTuplePlan(rel, key_col, keys, params,
                                              PlanOptions(prf, threads, true));
        ExpectPlansEqual(plan, reference,
                         std::string(PrfKindName(prf)) + " col=" +
                             std::to_string(key_col) + " threads=" +
                             std::to_string(threads));
      }
    }
  }
}

// The chunked batch path must match a one-value-at-a-time reference loop
// through the same PRF — the batch arena and view bookkeeping add nothing.
TEST(TuplePlanTest, BatchPathMatchesSingleShotReference) {
  const Relation rel = MixedKeyRelation(1500);
  const WatermarkKeySet keys = testutil::TestKeys();
  WatermarkParams params;
  params.e = 3;
  for (const PrfKind prf_kind : kBackends) {
    const std::unique_ptr<KeyedPrf> prf_k1 =
        CreateKeyedPrf(prf_kind, keys.k1, params.hash_algo);
    const std::unique_ptr<KeyedPrf> prf_k2 =
        CreateKeyedPrf(prf_kind, keys.k2, params.hash_algo);
    const TuplePlan plan =
        BuildTuplePlan(rel, 0, keys, params, PlanOptions(prf_kind, 2, true));
    HashScratch scratch;
    std::size_t fit_count = 0;
    for (std::size_t j = 0; j < rel.NumRows(); ++j) {
      const Value& key = rel.Get(j, 0);
      if (key.is_null()) {
        EXPECT_EQ(plan.fit[j], 0) << j;
        continue;
      }
      const std::uint64_t h1 = HashValue(*prf_k1, key, scratch);
      if (h1 % params.e != 0) {
        EXPECT_EQ(plan.fit[j], 0) << j;
        continue;
      }
      ++fit_count;
      ASSERT_EQ(plan.fit[j], 1) << j;
      EXPECT_EQ(plan.h1[j], h1) << j;
      EXPECT_EQ(plan.payload_index[j],
                PayloadIndexFromHash(HashValue(*prf_k2, key, scratch), 64,
                                     params.bit_index_mode))
          << j;
    }
    EXPECT_EQ(plan.fit_count, fit_count);
  }
}

// Different backends must select different tuple subsets (the channels are
// genuinely distinct primitives, not renamings of one another).
TEST(TuplePlanTest, BackendsSelectDifferentTuples) {
  const Relation rel = MixedKeyRelation(3000);
  const WatermarkKeySet keys = testutil::TestKeys();
  WatermarkParams params;
  params.e = 5;
  const TuplePlan kh = BuildTuplePlan(
      rel, 0, keys, params, PlanOptions(PrfKind::kKeyedHash, 1, true));
  const TuplePlan sip = BuildTuplePlan(
      rel, 0, keys, params, PlanOptions(PrfKind::kSipHash24, 1, true));
  EXPECT_NE(kh.fit, sip.fit);
}

// shard_fit must tile the fit count exactly over the ShardBounds partition
// on both paths (the sharded map-mode embed depends on it).
TEST(TuplePlanTest, ShardFitSumsToFitCount) {
  const Relation rel = MixedKeyRelation(2000);
  const WatermarkKeySet keys = testutil::TestKeys();
  WatermarkParams params;
  params.e = 4;
  for (const bool cached : {true, false}) {
    const TuplePlan plan =
        BuildTuplePlan(rel, 1, keys, params,
                       PlanOptions(PrfKind::kSipHash24, 3, cached));
    std::size_t sum = 0;
    for (const std::size_t f : plan.shard_fit) sum += f;
    EXPECT_EQ(sum, plan.fit_count);
    EXPECT_EQ(plan.shard_fit.size(), 3u);
  }
}

}  // namespace
}  // namespace catmark
