#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/bitvec.h"
#include "common/hex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace catmark {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad e");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad e");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad e");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kConstraintViolation),
            "ConstraintViolation");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ConstraintViolationPredicate) {
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_FALSE(Status::Internal("x").IsConstraintViolation());
}

Status ReturnIfErrorHelper(bool fail) {
  CATMARK_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("after");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(ReturnIfErrorHelper(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ReturnIfErrorHelper(false).code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------ Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

Result<int> AssignOrReturnHelper(bool fail) {
  CATMARK_ASSIGN_OR_RETURN(
      const int v, fail ? Result<int>(Status::Internal("x")) : Result<int>(5));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(AssignOrReturnHelper(false).value(), 6);
  EXPECT_EQ(AssignOrReturnHelper(true).status().code(), StatusCode::kInternal);
}

// -------------------------------------------------------------------- bits

TEST(BitsTest, BitWidthMatchesPaperNotation) {
  EXPECT_EQ(BitWidth(0), 1);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(4), 3);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(16000), 14);  // the paper's departure-city example
  EXPECT_EQ(BitWidth(~std::uint64_t{0}), 64);
}

TEST(BitsTest, MsbExtractsTopBits) {
  EXPECT_EQ(Msb(0xF000000000000000ULL, 4), 0xFu);
  EXPECT_EQ(Msb(0x8000000000000000ULL, 1), 1u);
  EXPECT_EQ(Msb(0x0123456789ABCDEFULL, 8), 0x01u);
  EXPECT_EQ(Msb(42, 64), 42u);
  EXPECT_EQ(Msb(42, 0), 0u);
}

TEST(BitsTest, MsbWithNarrowWidthLeftPads) {
  // A 8-bit value, asking for the top 4 bits of its 8-bit representation.
  EXPECT_EQ(Msb(0xAB, 4, 8), 0xAu);
  EXPECT_EQ(Msb(0x0B, 4, 8), 0x0u);  // left-padded with zeroes
}

TEST(BitsTest, SetBitForcesPosition) {
  EXPECT_EQ(SetBit(0b1000, 0, 1), 0b1001u);
  EXPECT_EQ(SetBit(0b1001, 0, 0), 0b1000u);
  EXPECT_EQ(SetBit(0, 63, 1), 0x8000000000000000ULL);
  EXPECT_EQ(SetBit(0b1111, 2, 0), 0b1011u);
}

TEST(BitsTest, GetBitReadsPosition) {
  EXPECT_EQ(GetBit(0b1010, 0), 0);
  EXPECT_EQ(GetBit(0b1010, 1), 1);
  EXPECT_EQ(GetBit(0b1010, 3), 1);
}

TEST(BitsTest, SetThenGetRoundTrips) {
  for (int pos = 0; pos < 64; ++pos) {
    EXPECT_EQ(GetBit(SetBit(0, pos, 1), pos), 1);
    EXPECT_EQ(GetBit(SetBit(~std::uint64_t{0}, pos, 0), pos), 0);
  }
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
}

// ---------------------------------------------------------------- BitVector

TEST(BitVectorTest, ConstructsZeroFilled) {
  BitVector v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.PopCount(), 0u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(v.Get(i), 0);
}

TEST(BitVectorTest, ConstructsOneFilled) {
  BitVector v(70, 1);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.PopCount(), 70u);  // unused high word bits must stay clear
}

TEST(BitVectorTest, SetGetFlip) {
  BitVector v(130);
  v.Set(0, 1);
  v.Set(64, 1);
  v.Set(129, 1);
  EXPECT_EQ(v.Get(0), 1);
  EXPECT_EQ(v.Get(64), 1);
  EXPECT_EQ(v.Get(129), 1);
  EXPECT_EQ(v.PopCount(), 3u);
  v.Flip(0);
  EXPECT_EQ(v.Get(0), 0);
  v.Flip(1);
  EXPECT_EQ(v.Get(1), 1);
}

TEST(BitVectorTest, PushBackGrows) {
  BitVector v;
  for (int i = 0; i < 100; ++i) v.PushBack(i % 2);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.PopCount(), 50u);
  EXPECT_EQ(v.Get(1), 1);
  EXPECT_EQ(v.Get(98), 0);
}

TEST(BitVectorTest, FromStringParses) {
  Result<BitVector> r = BitVector::FromString("10110");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 5u);
  EXPECT_EQ(r.value().ToString(), "10110");
}

TEST(BitVectorTest, FromStringRejectsBadCharacters) {
  EXPECT_FALSE(BitVector::FromString("10120").ok());
  EXPECT_FALSE(BitVector::FromString("abc").ok());
}

TEST(BitVectorTest, FromStringEmptyIsEmpty) {
  Result<BitVector> r = BitVector::FromString("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(BitVectorTest, HammingDistance) {
  const BitVector a = BitVector::FromString("101010").value();
  const BitVector b = BitVector::FromString("100110").value();
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
  EXPECT_DOUBLE_EQ(a.NormalizedHammingDistance(b), 2.0 / 6.0);
}

TEST(BitVectorTest, EqualityIncludesSize) {
  const BitVector a(5);
  const BitVector b(6);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BitVector(5));
}

TEST(BitVectorTest, FromGeneratorUsesLowBitsOfWords) {
  int calls = 0;
  const BitVector v = BitVector::FromGenerator(128, [&] {
    ++calls;
    return ~std::uint64_t{0};
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(v.PopCount(), 128u);
}

TEST(BitVectorTest, FromGeneratorPartialWord) {
  const BitVector v =
      BitVector::FromGenerator(10, [] { return std::uint64_t{0b1011}; });
  EXPECT_EQ(v.ToString(), "1101000000");
}

// ---------------------------------------------------------------------- hex

TEST(HexTest, EncodesBytes) {
  const std::vector<std::uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(HexEncode(bytes), "deadbeef");
}

TEST(HexTest, DecodeRoundTrips) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x7f, 0xff, 0x10};
  Result<std::vector<std::uint8_t>> r = HexDecode(HexEncode(bytes));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), bytes);
}

TEST(HexTest, DecodeAcceptsUpperCase) {
  Result<std::vector<std::uint8_t>> r = HexDecode("DEADBEEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(HexEncode(r.value()), "deadbeef");
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

// ----------------------------------------------------------------- strings

TEST(StrUtilTest, SplitPreservesEmptyFields) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StrUtilTest, SplitSingleField) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrUtilTest, JoinInvertsSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrUtilTest, TrimRemovesWhitespace) {
  EXPECT_EQ(StrTrim("  x \t\n"), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("a b"), "a b");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("watermark", "water"));
  EXPECT_FALSE(StartsWith("water", "watermark"));
  EXPECT_TRUE(EndsWith("watermark", "mark"));
  EXPECT_FALSE(EndsWith("mark", "watermark"));
}

TEST(StrUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace catmark
