#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hmac.h"

namespace catmark {
namespace {

std::vector<std::uint8_t> Bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1Sha256) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const Hmac hmac(HashAlgorithm::kSha256, key);
  EXPECT_EQ(
      hmac.Compute("Hi There").ToHex(),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2Sha256) {
  const Hmac hmac(HashAlgorithm::kSha256, Bytes("Jefe"));
  EXPECT_EQ(
      hmac.Compute("what do ya want for nothing?").ToHex(),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20 x 0xaa key, 50 x 0xdd data.
TEST(HmacTest, Rfc4231Case3Sha256) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  const Hmac hmac(HashAlgorithm::kSha256, key);
  EXPECT_EQ(
      hmac.Compute(data.data(), data.size()).ToHex(),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size (131 x 0xaa).
TEST(HmacTest, Rfc4231Case6LongKeySha256) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const Hmac hmac(HashAlgorithm::kSha256, key);
  EXPECT_EQ(
      hmac.Compute("Test Using Larger Than Block-Size Key - Hash Key First")
          .ToHex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 2202 test case 1 for HMAC-SHA1.
TEST(HmacTest, Rfc2202Case1Sha1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const Hmac hmac(HashAlgorithm::kSha1, key);
  EXPECT_EQ(hmac.Compute("Hi There").ToHex(),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

// RFC 2202 test case 1 for HMAC-MD5.
TEST(HmacTest, Rfc2202Case1Md5) {
  const std::vector<std::uint8_t> key(16, 0x0b);
  const Hmac hmac(HashAlgorithm::kMd5, key);
  EXPECT_EQ(hmac.Compute("Hi There").ToHex(),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacTest, Compute64IsDigestPrefix) {
  const Hmac hmac(HashAlgorithm::kSha256, Bytes("key"));
  const Digest d = hmac.Compute("value");
  EXPECT_EQ(hmac.Compute64("value"), d.ToUint64());
}

TEST(HmacTest, DifferentKeysDiffer) {
  const Hmac a(HashAlgorithm::kSha256, Bytes("k1"));
  const Hmac b(HashAlgorithm::kSha256, Bytes("k2"));
  EXPECT_NE(a.Compute64("msg"), b.Compute64("msg"));
}

}  // namespace
}  // namespace catmark
