#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"

namespace catmark {
namespace {

TEST(FalsePositiveTest, HalvesPerBit) {
  EXPECT_DOUBLE_EQ(FalsePositiveProbability(1), 0.5);
  EXPECT_DOUBLE_EQ(FalsePositiveProbability(10), std::pow(0.5, 10));
}

TEST(FalsePositiveTest, PaperExampleFullBandwidth) {
  // "in the case of a data set with N = 6000 tuples and with e = 60, this
  // probability is approximately 7.8e-31" — i.e. (1/2)^(N/e) = (1/2)^100.
  const double p = FalsePositiveProbability(6000 / 60);
  EXPECT_NEAR(p / 7.8e-31, 1.0, 0.02);
}

TEST(AttackSuccessTest, ZeroWhenRExceedsHits) {
  // "If r > a/e then P(r,a) = 0."
  RandomAttackModel model;
  model.attacked_tuples = 100;
  model.e = 60;  // only 1 watermarked tuple hit on average
  EXPECT_DOUBLE_EQ(AttackSuccessProbability(model, 2), 0.0);
}

TEST(AttackSuccessTest, CertainWhenRZero) {
  RandomAttackModel model;
  model.attacked_tuples = 600;
  EXPECT_DOUBLE_EQ(AttackSuccessProbability(model, 0), 1.0);
}

TEST(AttackSuccessTest, PaperWorkedExample) {
  // Section 4.4: r=15, p=0.7, a=1200, e=60 => n = 20 trials; the paper's
  // CLT estimate gives P(15,1200) ~= 31.6%.
  RandomAttackModel model;
  model.attacked_tuples = 1200;
  model.e = 60;
  model.flip_probability = 0.7;
  const double approx = AttackSuccessProbability(model, 15, /*exact=*/false);
  EXPECT_NEAR(approx, 0.316, 0.03);
  // The exact tail is in the same regime (the CLT at n=20 without
  // continuity correction is rough; ~0.31 approx vs ~0.42 exact).
  const double exact = AttackSuccessProbability(model, 15, /*exact=*/true);
  EXPECT_NEAR(exact, approx, 0.15);
}

TEST(AttackSuccessTest, ExactMatchesClosedFormSmallCase) {
  // n = 2 trials, p = 0.5: P[X >= 1] = 0.75.
  RandomAttackModel model;
  model.attacked_tuples = 120;
  model.e = 60;
  model.flip_probability = 0.5;
  EXPECT_NEAR(AttackSuccessProbability(model, 1), 0.75, 1e-9);
}

TEST(AttackSuccessTest, MonotoneInAttackSize) {
  RandomAttackModel model;
  model.e = 60;
  model.flip_probability = 0.7;
  double prev = 0.0;
  for (const std::uint64_t a : {600ull, 1200ull, 2400ull, 4800ull}) {
    model.attacked_tuples = a;
    const double p = AttackSuccessProbability(model, 15);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(AttackSuccessTest, MonotoneDecreasingInE) {
  // Larger e => fewer marked tuples hit => attack flips fewer bits. (This
  // is vulnerability of wm_data bits, the Figure 5 *embedding side*
  // trade-off is the opposite direction — see EXPERIMENTS.md.)
  RandomAttackModel model;
  model.attacked_tuples = 1200;
  model.flip_probability = 0.7;
  double prev = 1.0;
  for (const std::uint64_t e : {20ull, 60ull, 120ull}) {
    model.e = e;
    const double p = AttackSuccessProbability(model, 15);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(MaxHitTuplesTest, SatisfiesTheBoundItPromises) {
  const double n_star = MaxHitTuplesForVulnerabilityBound(15, 0.7, 0.1);
  EXPECT_GT(n_star, 0.0);
  // At n = n_star the CLT tail equals delta; slightly fewer trials must be
  // safer.
  RandomAttackModel model;
  model.e = 1;
  model.attacked_tuples = static_cast<std::uint64_t>(n_star);
  model.flip_probability = 0.7;
  const double p =
      AttackSuccessProbability(model, 15, /*exact=*/false);
  EXPECT_LE(p, 0.12);
}

TEST(MinimumETest, PaperScenarioShape) {
  // Paper: a = 600 (10% of 6000), r = 15, p = 0.7, delta = 10%. The paper
  // reports e >= 23 (~4.3% alterations); our solver, following the same
  // normal-approximation method, lands in the same ballpark (see
  // EXPERIMENTS.md for the arithmetic discrepancy discussion).
  const std::uint64_t e_min = MinimumEForVulnerability(600, 15, 0.7, 0.1);
  EXPECT_GE(e_min, 20u);
  EXPECT_LE(e_min, 45u);
  // The resulting embedding alteration fraction 1/e is a few percent.
  EXPECT_LT(1.0 / static_cast<double>(e_min), 0.05);
}

TEST(MinimumETest, TighterBoundNeedsLargerE) {
  const std::uint64_t loose = MinimumEForVulnerability(600, 15, 0.7, 0.2);
  const std::uint64_t tight = MinimumEForVulnerability(600, 15, 0.7, 0.01);
  EXPECT_GE(tight, loose);
}

TEST(MinimumETest, StrongerAttackerNeedsLargerE) {
  const std::uint64_t weak = MinimumEForVulnerability(300, 15, 0.7, 0.1);
  const std::uint64_t strong = MinimumEForVulnerability(1200, 15, 0.7, 0.1);
  EXPECT_GE(strong, weak);
}

TEST(ExpectedMarkAlterationTest, PaperWorkedExample) {
  // r = 15, |wm_data| = 100, tecc = 5%, |wm| = 10:
  // (15/100 - 0.05) * 10/100 = 1%.
  EXPECT_NEAR(ExpectedMarkAlterationFraction(15, 100, 0.05, 10), 0.01, 1e-12);
}

TEST(ExpectedMarkAlterationTest, EccAbsorbsSmallDamage) {
  EXPECT_DOUBLE_EQ(ExpectedMarkAlterationFraction(4, 100, 0.05, 10), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedMarkAlterationFraction(5, 100, 0.05, 10), 0.0);
}

TEST(ExpectedMarkAlterationTest, CappedAtOne) {
  EXPECT_LE(ExpectedMarkAlterationFraction(1000, 100, 0.0, 1000), 1.0);
}

}  // namespace
}  // namespace catmark
