#include <gtest/gtest.h>

#include "core/certificate.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/histogram.h"
#include "relation/ops.h"
#include "random/rng.h"

namespace catmark {
namespace {

struct CertTestData {
  Relation marked;
  WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("cert-owner");
  WatermarkParams params;
  BitVector wm;
  WatermarkCertificate cert;
};

CertTestData MakeSetup() {
  CertTestData s;
  KeyedCategoricalConfig gen;
  gen.num_tuples = 5000;
  gen.domain_size = 80;
  gen.seed = 111;
  s.marked = GenerateKeyedCategorical(gen);
  s.params.e = 40;
  s.wm = MakeWatermark(10, 111);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(s.keys, s.params).Embed(s.marked, options, s.wm).value();
  const auto freqs = FrequencyHistogram::Compute(
                         s.marked, 1, report.domain)
                         .value()
                         .Frequencies();
  s.cert = WatermarkCertificate::Create(s.keys, s.params, options, report,
                                        s.wm, freqs, "ItemScan sample #1");
  return s;
}

TEST(CertificateTest, SerializationRoundTrips) {
  const CertTestData s = MakeSetup();
  const std::string text = s.cert.Serialize();
  const WatermarkCertificate back =
      WatermarkCertificate::Deserialize(text).value();
  EXPECT_TRUE(back == s.cert);
}

TEST(CertificateTest, CarriesEverythingDetectionNeeds) {
  const CertTestData s = MakeSetup();
  const WatermarkCertificate cert =
      WatermarkCertificate::Deserialize(s.cert.Serialize()).value();
  // Detect purely from certificate + keys.
  const Detector detector(s.keys, cert.params);
  DetectOptions options;
  options.key_attr = cert.key_attr;
  options.target_attr = cert.target_attr;
  options.payload_length = cert.payload_length;
  options.domain = cert.domain;
  const DetectionResult detection =
      detector.Detect(s.marked, options, cert.wm.size()).value();
  EXPECT_EQ(detection.wm, cert.wm);
}

TEST(CertificateTest, KeyCommitmentVerifies) {
  const CertTestData s = MakeSetup();
  EXPECT_TRUE(s.cert.VerifyKeys(s.keys));
  EXPECT_FALSE(s.cert.VerifyKeys(WatermarkKeySet::FromPassphrase("mallory")));
}

TEST(CertificateTest, CommitmentDoesNotRevealKeys) {
  // The commitment is a single SHA-256: 64 hex chars, not the key bytes.
  const CertTestData s = MakeSetup();
  EXPECT_EQ(s.cert.key_commitment_hex.size(), 64u);
  EXPECT_EQ(s.cert.Serialize().find(s.keys.k1.ToHex()), std::string::npos);
}

TEST(CertificateTest, IntegerDomainRoundTrips) {
  SalesGenConfig gen;
  gen.num_tuples = 2000;
  gen.num_items = 50;
  Relation rel = GenerateItemScan(gen);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(112);
  WatermarkParams params;
  EmbedOptions options;
  options.key_attr = "Visit_Nbr";
  options.target_attr = "Item_Nbr";
  const BitVector wm = MakeWatermark(10, 112);
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();
  const WatermarkCertificate cert =
      WatermarkCertificate::Create(keys, params, options, report, wm);
  const WatermarkCertificate back =
      WatermarkCertificate::Deserialize(cert.Serialize()).value();
  EXPECT_TRUE(back == cert);
  EXPECT_TRUE(back.domain.value(0).is_int64());
}

TEST(CertificateTest, NonDefaultParamsRoundTrip) {
  CertTestData s = MakeSetup();
  s.cert.params.ecc = EccKind::kHamming74;
  s.cert.params.hash_algo = HashAlgorithm::kSha1;
  s.cert.params.bit_index_mode = BitIndexMode::kMsbModL;
  s.cert.params.min_category_keep = 7;
  const WatermarkCertificate back =
      WatermarkCertificate::Deserialize(s.cert.Serialize()).value();
  EXPECT_TRUE(back == s.cert);
}

TEST(CertificateTest, RecordsThePrfBackendUsed) {
  // Embed under the fast backend: the certificate must pin it so dispute-
  // time detection re-verifies with the right primitive.
  CertTestData s;
  KeyedCategoricalConfig gen;
  gen.num_tuples = 5000;
  gen.domain_size = 80;
  gen.seed = 111;
  s.marked = GenerateKeyedCategorical(gen);
  s.params.e = 40;
  s.params.prf = PrfKind::kSipHash24;
  s.wm = MakeWatermark(10, 111);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(s.keys, s.params).Embed(s.marked, options, s.wm).value();
  EXPECT_EQ(report.prf, PrfKind::kSipHash24);
  s.cert = WatermarkCertificate::Create(s.keys, s.params, options, report,
                                        s.wm);
  EXPECT_NE(s.cert.Serialize().find("prf=siphash24"), std::string::npos);

  const WatermarkCertificate back =
      WatermarkCertificate::Deserialize(s.cert.Serialize()).value();
  EXPECT_TRUE(back == s.cert);
  ASSERT_TRUE(back.params.prf.has_value());
  EXPECT_EQ(*back.params.prf, PrfKind::kSipHash24);

  // One-call certificate detection picks the backend up transparently.
  const CertifiedDetection result =
      DetectWithCertificate(s.marked, back, s.keys).value();
  EXPECT_TRUE(result.decision.owned);
  EXPECT_EQ(result.detection.prf, PrfKind::kSipHash24);
}

TEST(CertificateTest, LegacyCertificateWithoutPrfFieldStillVerifies) {
  // Certificates issued before the PRF subsystem carry no prf= line; they
  // must keep deserializing and must verify with the legacy keyed hash.
  const CertTestData s = MakeSetup();
  std::string text = s.cert.Serialize();
  const std::size_t pos = text.find("prf=");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, text.find('\n', pos) - pos + 1);
  ASSERT_EQ(text.find("prf="), std::string::npos);

  const WatermarkCertificate legacy =
      WatermarkCertificate::Deserialize(text).value();
  ASSERT_TRUE(legacy.params.prf.has_value());
  EXPECT_EQ(*legacy.params.prf, PrfKind::kKeyedHash);
  EXPECT_TRUE(legacy == s.cert);

  const CertifiedDetection result =
      DetectWithCertificate(s.marked, legacy, s.keys).value();
  EXPECT_TRUE(result.decision.owned);
  EXPECT_EQ(result.detection.wm, s.cert.wm);
}

TEST(CertificateTest, RejectsUnknownPrfName) {
  const CertTestData s = MakeSetup();
  std::string text = s.cert.Serialize();
  const std::size_t pos = text.find("prf=keyed-hash");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("prf=keyed-hash").size(), "prf=rot13");
  const auto result = WatermarkCertificate::Deserialize(text);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // The error teaches the valid choices.
  EXPECT_NE(result.status().ToString().find("siphash24"), std::string::npos);
}

TEST(CertificateTest, RejectsGarbage) {
  EXPECT_FALSE(WatermarkCertificate::Deserialize("not a cert").ok());
  EXPECT_FALSE(WatermarkCertificate::Deserialize(
                   "catmark-certificate-v1\nbogus_field=1\n")
                   .ok());
  EXPECT_FALSE(WatermarkCertificate::Deserialize(
                   "catmark-certificate-v1\ndescription=x\n")
                   .ok());  // missing wm/payload
}

TEST(CertifiedDetectionTest, OneCallWorkflow) {
  const CertTestData s = MakeSetup();
  const CertifiedDetection result =
      DetectWithCertificate(s.marked, s.cert, s.keys).value();
  EXPECT_TRUE(result.decision.owned);
  EXPECT_EQ(result.detection.wm, s.cert.wm);
}

TEST(CertifiedDetectionTest, RefusesMismatchedKeys) {
  const CertTestData s = MakeSetup();
  const auto result = DetectWithCertificate(
      s.marked, s.cert, WatermarkKeySet::FromPassphrase("impostor"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("commitment"), std::string::npos);
}

TEST(CertifiedDetectionTest, SurvivesAttackThroughCertificate) {
  const CertTestData s = MakeSetup();
  Xoshiro256ss rng(7);
  const Relation kept = SampleRows(s.marked, 0.5, rng).value();
  const CertifiedDetection result =
      DetectWithCertificate(kept, s.cert, s.keys).value();
  EXPECT_TRUE(result.decision.owned);
}

TEST(CertificateTest, ValuesWithCommasSurvive) {
  // Hex-encoding must protect domain values containing the separators.
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  for (int i = 0; i < 600; ++i) {
    rel.AppendRowUnchecked({Value(static_cast<std::int64_t>(i)),
                            Value(i % 2 ? "a,b=c" : "x\ny")});
  }
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(113);
  WatermarkParams params;
  params.e = 20;
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const BitVector wm = MakeWatermark(4, 113);
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();
  const WatermarkCertificate cert =
      WatermarkCertificate::Create(keys, params, options, report, wm);
  const WatermarkCertificate back =
      WatermarkCertificate::Deserialize(cert.Serialize()).value();
  EXPECT_TRUE(back == cert);
  EXPECT_TRUE(back.domain.Contains(Value("a,b=c")));
  EXPECT_TRUE(back.domain.Contains(Value("x\ny")));
}

}  // namespace
}  // namespace catmark
