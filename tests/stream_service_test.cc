// Streaming service equivalence suite: the batched StreamSession /
// WatermarkService path must be byte-identical to the seed-era
// one-row-at-a-time incremental path — same relation bytes, same dictionary
// code assignment, same detection outcome — across batch splits, PRF
// backends, cache configurations and service thread counts.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/certificate.h"
#include "core/codec.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "crypto/prf.h"
#include "ecc/code.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/csv.h"
#include "service/service.h"
#include "service/session.h"

namespace catmark {
namespace {

struct Fixture {
  Relation rel;
  WatermarkKeySet keys = WatermarkKeySet::FromSeed(91);
  WatermarkParams params;
  BitVector wm;
  EmbedOptions options;
  EmbedReport report;
};

Fixture MakeFixture(std::optional<PrfKind> prf = std::nullopt,
                    std::uint64_t seed = 91) {
  Fixture f;
  f.keys = WatermarkKeySet::FromSeed(seed);
  KeyedCategoricalConfig gen;
  gen.num_tuples = 3000;
  gen.domain_size = 100;
  gen.seed = seed;
  f.rel = GenerateKeyedCategorical(gen);
  f.params.e = 30;
  f.params.prf = prf;
  f.wm = MakeWatermark(10, seed);
  f.options.key_attr = "K";
  f.options.target_attr = "A";
  f.report = Embedder(f.keys, f.params).Embed(f.rel, f.options, f.wm).value();
  return f;
}

SessionSpec SpecOf(const Fixture& f) {
  return SessionSpec::FromEmbedReport(f.keys, f.params, f.options, f.report,
                                      f.wm);
}

DetectionResult Detect(const Fixture& f, const Relation& rel) {
  const Detector detector(f.keys, f.params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = f.report.payload_length;
  options.domain = f.report.domain;
  return detector.Detect(rel, options, f.wm.size()).value();
}

// A stream of rows with repeat-heavy keys (like a live feed re-inserting
// the same customers) plus a unique tail, deterministic in `seed`.
std::vector<Row> MakeStream(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool repeat = (rng() % 4) != 0;  // ~75% repeats of a small pool
    const std::int64_t key =
        repeat ? static_cast<std::int64_t>(1000000 + rng() % 200)
               : static_cast<std::int64_t>(2000000 + i);
    rows.push_back({Value(key), Value("V0001")});
  }
  return rows;
}

// True when the relations are byte-identical *including* dictionary code
// assignment (SameContent deliberately ignores code order; the streaming
// path promises to preserve it exactly).
void ExpectIdenticalState(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  EXPECT_EQ(WriteCsvString(a), WriteCsvString(b));
  for (std::size_t c = 0; c < a.schema().num_columns(); ++c) {
    ASSERT_EQ(a.store().IsDictColumn(c), b.store().IsDictColumn(c));
    if (!a.store().IsDictColumn(c)) continue;
    EXPECT_EQ(a.store().Codes(c), b.store().Codes(c)) << "column " << c;
    EXPECT_EQ(a.store().Dict(c).size(), b.store().Dict(c).size());
    for (std::size_t k = 0; k < a.store().Dict(c).size(); ++k) {
      EXPECT_EQ(a.store().Dict(c)[k], b.store().Dict(c)[k]);
    }
  }
}

// Independent single-shot reference built straight from the codec
// primitives — what Section 4.3 says each insert must do. Pins the batched
// path to the spec, not just to the legacy implementation.
Row ReferenceMarkedRow(const Fixture& f, Row row) {
  const auto prf_k1 =
      CreateKeyedPrf(f.report.prf, f.keys.k1, f.params.hash_algo);
  const auto prf_k2 =
      CreateKeyedPrf(f.report.prf, f.keys.k2, f.params.hash_algo);
  const BitVector wm_data = CreateEcc(f.params.ecc)
                                ->Encode(f.wm, f.report.payload_length)
                                .value();
  HashScratch scratch;
  const std::uint64_t h1 = HashValue(*prf_k1, row[0], scratch);
  if (h1 % f.params.e == 0) {
    const std::size_t idx =
        PayloadIndexFromHash(HashValue(*prf_k2, row[0], scratch),
                             f.report.payload_length, f.params.bit_index_mode);
    const std::size_t t = SelectValueIndex(h1, f.report.domain.size(),
                                           wm_data.Get(idx));
    row[1] = f.report.domain.value(t);
  }
  return row;
}

class StreamEquivalenceTest : public ::testing::TestWithParam<PrfKind> {};

TEST_P(StreamEquivalenceTest, BatchSplitsMatchOneAtATime) {
  const Fixture f = MakeFixture(GetParam());
  const std::vector<Row> stream = MakeStream(2000, 7);

  // Path 1: the legacy wrapper, one row at a time.
  Relation one_at_a_time = f.rel;
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  std::size_t legacy_fit = 0;
  for (const Row& row : stream) {
    if (inc.Insert(one_at_a_time, row).value()) ++legacy_fit;
  }

  // Path 2: one giant batch.
  Relation one_batch = f.rel;
  StreamSession big = StreamSession::Create(SpecOf(f)).value();
  std::vector<Row> rows = stream;
  const BatchReport report =
      big.InsertBatch(one_batch, std::span<Row>(rows)).value();
  EXPECT_EQ(report.rows, stream.size());
  EXPECT_EQ(report.fit_rows, legacy_fit);
  // Repeat-heavy keys: far fewer PRF calls than rows.
  EXPECT_LT(report.hashed_keys, stream.size());
  EXPECT_EQ(big.total_rows(), stream.size());
  EXPECT_EQ(big.total_fit(), legacy_fit);
  ExpectIdenticalState(one_at_a_time, one_batch);

  // Path 3: random batch splits, resident cache warm across batches.
  Relation split_rel = f.rel;
  StreamSession split = StreamSession::Create(SpecOf(f)).value();
  std::mt19937_64 rng(13);
  rows = stream;
  std::size_t split_fit = 0;
  for (std::size_t at = 0; at < rows.size();) {
    const std::size_t len =
        std::min(rows.size() - at, 1 + rng() % 700);
    split_fit += split.InsertBatch(split_rel,
                                   std::span<Row>(&rows[at], len))
                     .value()
                     .fit_rows;
    at += len;
  }
  EXPECT_EQ(split_fit, legacy_fit);
  ExpectIdenticalState(one_at_a_time, split_rel);

  // Path 4: resident cache disabled — every batch re-hashes, same bytes.
  Relation uncached_rel = f.rel;
  SessionSpec uncached_spec = SpecOf(f);
  uncached_spec.key_cache_capacity = 0;
  StreamSession uncached = StreamSession::Create(std::move(uncached_spec))
                               .value();
  rows = stream;
  for (std::size_t at = 0; at < rows.size();) {
    const std::size_t len = std::min(rows.size() - at, std::size_t{257});
    ASSERT_TRUE(uncached
                    .InsertBatch(uncached_rel, std::span<Row>(&rows[at], len))
                    .ok());
    at += len;
  }
  EXPECT_EQ(uncached.cached_keys(), 0u);
  ExpectIdenticalState(one_at_a_time, uncached_rel);

  // Every path must still detect the offline-embedded mark.
  EXPECT_EQ(Detect(f, one_batch).wm, f.wm);

  // And the batched rows match the from-first-principles reference.
  std::mt19937_64 pick(29);
  for (int i = 0; i < 20; ++i) {
    const std::size_t j = pick() % stream.size();
    const Row expected = ReferenceMarkedRow(f, stream[j]);
    const std::size_t row_index = f.rel.NumRows() + j;
    EXPECT_EQ(one_batch.Get(row_index, 0), expected[0]);
    EXPECT_EQ(one_batch.Get(row_index, 1), expected[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, StreamEquivalenceTest,
                         ::testing::Values(PrfKind::kKeyedHash,
                                           PrfKind::kSipHash24),
                         [](const auto& info) {
                           return std::string(
                               info.param == PrfKind::kKeyedHash
                                   ? "KeyedHash"
                                   : "SipHash24");
                         });

TEST(StreamSessionTest, ChunkBoundariesDoNotChangeVerdicts) {
  // A batch larger than kKeyHashBatch forces multiple Hash64Column chunks
  // inside one InsertBatch; keys repeating across chunk boundaries must
  // resolve identically.
  const Fixture f = MakeFixture();
  std::vector<Row> stream = MakeStream(3 * kKeyHashBatch + 37, 17);

  Relation batched = f.rel;
  StreamSession session = StreamSession::Create(SpecOf(f)).value();
  ASSERT_TRUE(session.InsertBatch(batched, std::span<Row>(stream)).ok());

  Relation serial = f.rel;
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  for (const Row& row : MakeStream(3 * kKeyHashBatch + 37, 17)) {
    ASSERT_TRUE(inc.Insert(serial, row).ok());
  }
  ExpectIdenticalState(serial, batched);
}

TEST(StreamSessionTest, NullKeysAreUnfitAndAppended) {
  const Fixture f = MakeFixture();
  StreamSession session = StreamSession::Create(SpecOf(f)).value();
  Relation rel = f.rel;
  std::vector<Row> rows;
  rows.push_back({Value(), Value("V0001")});
  const BatchReport report =
      session.InsertBatch(rel, std::span<Row>(rows)).value();
  EXPECT_EQ(report.rows, 1u);
  EXPECT_EQ(report.fit_rows, 0u);
  EXPECT_EQ(report.hashed_keys, 0u);
  EXPECT_EQ(rel.NumRows(), f.rel.NumRows() + 1);
}

TEST(StreamSessionTest, BatchesAreAtomicOnValidationErrors) {
  const Fixture f = MakeFixture();
  StreamSession session = StreamSession::Create(SpecOf(f)).value();
  Relation rel = f.rel;
  const std::string before = WriteCsvString(rel);

  // Arity error in the middle of the batch: nothing lands.
  std::vector<Row> bad_arity = MakeStream(10, 3);
  bad_arity[7] = {Value(std::int64_t{1})};
  EXPECT_FALSE(session.InsertBatch(rel, std::span<Row>(bad_arity)).ok());
  EXPECT_EQ(WriteCsvString(rel), before);

  // Type error: the key column is int64, hand it a string.
  std::vector<Row> bad_type = MakeStream(10, 3);
  bad_type[4][0] = Value("not-a-key");
  EXPECT_FALSE(session.InsertBatch(rel, std::span<Row>(bad_type)).ok());
  EXPECT_EQ(WriteCsvString(rel), before);

  // Unknown attribute: a relation without the key column.
  Relation wrong_schema(
      Schema::Create({{"X", ColumnType::kInt64, false}}).value());
  std::vector<Row> one = {{Value(std::int64_t{5})}};
  EXPECT_FALSE(session.InsertBatch(wrong_schema, std::span<Row>(one)).ok());
}

TEST(StreamSessionTest, RefreshReusesResidentStateAndRepairs) {
  Fixture f = MakeFixture();
  StreamSession session = StreamSession::Create(SpecOf(f)).value();
  const FitnessSelector fitness(f.keys.k1, f.params.e);
  std::size_t fit_row = f.rel.NumRows();
  for (std::size_t i = 0; i < f.rel.NumRows(); ++i) {
    if (fitness.IsFit(f.rel.Get(i, 0))) {
      fit_row = i;
      break;
    }
  }
  ASSERT_LT(fit_row, f.rel.NumRows());
  const Value marked_value = f.rel.Get(fit_row, 1);
  ASSERT_TRUE(f.rel.Set(fit_row, 1, Value("V0002")).ok());
  EXPECT_TRUE(session.Refresh(f.rel, fit_row).value());
  EXPECT_EQ(f.rel.Get(fit_row, 1), marked_value);
  // The verdict is resident now; a second refresh hits the cache.
  EXPECT_GE(session.cached_keys(), 1u);
  EXPECT_TRUE(session.Refresh(f.rel, fit_row).value());
  EXPECT_FALSE(session.Refresh(f.rel, f.rel.NumRows()).ok());
}

TEST(SessionSpecTest, FromEmbedReportPinsThePrfBackend) {
  Fixture f = MakeFixture(PrfKind::kSipHash24);
  ASSERT_EQ(f.report.prf, PrfKind::kSipHash24);
  WatermarkParams auto_params = f.params;
  auto_params.prf.reset();  // the later-process default
  const SessionSpec spec = SessionSpec::FromEmbedReport(
      f.keys, auto_params, f.options, f.report, f.wm);
  ASSERT_TRUE(spec.params.prf.has_value());
  EXPECT_EQ(*spec.params.prf, PrfKind::kSipHash24);
}

TEST(SessionSpecTest, ValidateRejectsBrokenSpecs) {
  const Fixture f = MakeFixture();
  ASSERT_TRUE(SpecOf(f).Validate().ok());

  SessionSpec no_prf = SpecOf(f);
  no_prf.params.prf.reset();
  EXPECT_FALSE(no_prf.Validate().ok());

  SessionSpec no_wm = SpecOf(f);
  no_wm.wm = BitVector();
  EXPECT_FALSE(no_wm.Validate().ok());

  SessionSpec short_payload = SpecOf(f);
  short_payload.payload_length = f.wm.size() - 1;
  EXPECT_FALSE(short_payload.Validate().ok());

  SessionSpec tiny_domain = SpecOf(f);
  tiny_domain.domain =
      CategoricalDomain::FromValues({Value("only")}).value();
  EXPECT_FALSE(tiny_domain.Validate().ok());

  SessionSpec bad_keys = SpecOf(f);
  bad_keys.keys.k2 = bad_keys.keys.k1;
  EXPECT_FALSE(bad_keys.Validate().ok());

  SessionSpec bad_e = SpecOf(f);
  bad_e.params.e = 0;
  EXPECT_FALSE(bad_e.Validate().ok());
  EXPECT_FALSE(StreamSession::Create(std::move(bad_e)).ok());
}

TEST(SessionSpecTest, FromCertificateVerifiesTheKeyCommitment) {
  const Fixture f = MakeFixture();
  const WatermarkCertificate cert = WatermarkCertificate::Create(
      f.keys, f.params, f.options, f.report, f.wm);

  const Result<SessionSpec> wrong =
      SessionSpec::FromCertificate(cert, WatermarkKeySet::FromSeed(4444));
  ASSERT_FALSE(wrong.ok());

  SessionSpec spec = SessionSpec::FromCertificate(cert, f.keys).value();
  EXPECT_EQ(spec.payload_length, f.report.payload_length);
  ASSERT_TRUE(spec.params.prf.has_value());

  // Inserts under the certificate spec are byte-identical to inserts under
  // the embed-report spec.
  const std::vector<Row> stream = MakeStream(500, 23);
  Relation from_cert = f.rel;
  Relation from_report = f.rel;
  StreamSession cert_session =
      StreamSession::Create(std::move(spec)).value();
  StreamSession report_session = StreamSession::Create(SpecOf(f)).value();
  std::vector<Row> a = stream;
  std::vector<Row> b = stream;
  ASSERT_TRUE(cert_session.InsertBatch(from_cert, std::span<Row>(a)).ok());
  ASSERT_TRUE(
      report_session.InsertBatch(from_report, std::span<Row>(b)).ok());
  ExpectIdenticalState(from_cert, from_report);
  // The grown relation still passes certificate-driven detection.
  const CertifiedDetection verdict =
      DetectWithCertificate(from_cert, cert, f.keys).value();
  EXPECT_EQ(verdict.detection.wm, f.wm);
}

TEST(WatermarkServiceTest, MultiplexedSessionsMatchSequentialAtEveryThreadCount) {
  // Three tenants with distinct keys/marks; one mixed batch stream. The
  // parallel executor must produce byte-identical relations at 1, 2 and 8
  // workers, all equal to running each session sequentially.
  constexpr std::size_t kSessions = 3;
  std::vector<Fixture> fixtures;
  for (std::size_t s = 0; s < kSessions; ++s) {
    fixtures.push_back(MakeFixture(std::nullopt, 100 + s));
  }

  // The mixed stream: interleaved per-session batches, deterministic.
  struct Piece {
    std::size_t fixture;
    std::vector<Row> rows;
  };
  std::vector<Piece> pieces;
  std::mt19937_64 rng(5);
  for (int round = 0; round < 12; ++round) {
    const std::size_t s = rng() % kSessions;
    pieces.push_back(Piece{s, MakeStream(50 + rng() % 300, rng())});
  }

  // Reference: each session sequentially.
  std::vector<Relation> expected;
  for (std::size_t s = 0; s < kSessions; ++s) {
    expected.push_back(fixtures[s].rel);
  }
  {
    std::vector<StreamSession> sessions;
    for (std::size_t s = 0; s < kSessions; ++s) {
      sessions.push_back(
          StreamSession::Create(SpecOf(fixtures[s])).value());
    }
    for (const Piece& piece : pieces) {
      std::vector<Row> rows = piece.rows;
      ASSERT_TRUE(sessions[piece.fixture]
                      .InsertBatch(expected[piece.fixture],
                                   std::span<Row>(rows))
                      .ok());
    }
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    WatermarkService service(ServiceOptions{threads});
    std::vector<std::size_t> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids.push_back(
          service.Open(SpecOf(fixtures[s]), fixtures[s].rel).value());
    }
    EXPECT_EQ(service.num_sessions(), kSessions);
    std::vector<WatermarkService::SessionBatch> batches;
    for (const Piece& piece : pieces) {
      batches.push_back(
          WatermarkService::SessionBatch{ids[piece.fixture], piece.rows});
    }
    const std::vector<Result<BatchReport>> results =
        service.ExecuteBatches(std::span<WatermarkService::SessionBatch>(
            batches));
    ASSERT_EQ(results.size(), pieces.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      EXPECT_EQ(results[i]->rows, pieces[i].rows.size());
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      ExpectIdenticalState(expected[s], service.relation(ids[s]));
      // Each grown tenant relation still detects its own mark.
      EXPECT_EQ(Detect(fixtures[s], service.relation(ids[s])).wm,
                fixtures[s].wm);
    }
    // Close hands the relation back and invalidates the handle.
    Relation closed = service.Close(ids[0]).value();
    ExpectIdenticalState(expected[0], closed);
    EXPECT_EQ(service.num_sessions(), kSessions - 1);
    EXPECT_FALSE(service.Close(ids[0]).ok());
    std::vector<Row> one = MakeStream(1, 1);
    EXPECT_FALSE(service.InsertBatch(ids[0], std::span<Row>(one)).ok());
  }
}

TEST(WatermarkServiceTest, BadSessionIdsFailTheirBatchOnly) {
  const Fixture f = MakeFixture();
  WatermarkService service;
  const std::size_t id = service.Open(SpecOf(f), f.rel).value();
  std::vector<WatermarkService::SessionBatch> batches;
  batches.push_back(WatermarkService::SessionBatch{id, MakeStream(20, 2)});
  batches.push_back(
      WatermarkService::SessionBatch{id + 999, MakeStream(20, 2)});
  batches.push_back(WatermarkService::SessionBatch{id, MakeStream(20, 3)});
  const auto results = service.ExecuteBatches(
      std::span<WatermarkService::SessionBatch>(batches));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(service.relation(id).NumRows(), f.rel.NumRows() + 40);
}

TEST(WatermarkServiceTest, OpenRejectsInvalidSpecs) {
  const Fixture f = MakeFixture();
  SessionSpec spec = SpecOf(f);
  spec.params.prf.reset();
  WatermarkService service;
  EXPECT_FALSE(service.Open(std::move(spec), f.rel).ok());
  EXPECT_EQ(service.num_sessions(), 0u);
}

}  // namespace
}  // namespace catmark
