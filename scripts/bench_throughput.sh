#!/usr/bin/env bash
# Runs the embed/detect pipeline throughput bench and emits the
# machine-readable BENCH_throughput.json next to the repo root (or at
# $CATMARK_BENCH_JSON when already set). Extra flags are forwarded, so the
# acceptance configuration is:
#   scripts/bench_throughput.sh build --n 1000000 --passes 3
set -euo pipefail

build_dir=${1:-build}
shift || true

bin="$build_dir/bench/bench_throughput"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (build the 'bench' target first)" >&2
  exit 1
fi

export CATMARK_BENCH_JSON=${CATMARK_BENCH_JSON:-BENCH_throughput.json}
"$bin" "$@"
echo "wrote $CATMARK_BENCH_JSON"
