#!/usr/bin/env bash
# Diffs the numeric rows of two BENCH_throughput.json reports:
#   scripts/bench_diff.sh <baseline.json> <current.json> [regression-pct]
#
# Compares every numeric key present in either report (the union, in a
# preferred pipeline order: embed, detect, PRF breakdown, load/e2e format
# rows, streaming grid — unknown keys trail alphabetically), so newly added
# rows such as load_catm_tps / e2e_format_gain are picked up without
# touching this script. Emits a GitHub warning annotation when a key
# regresses by more than `regression-pct` (default 25%), and another when a
# row present in the baseline is missing from the current report — a
# silently dropped bench row is a coverage regression, not noise. Shared CI
# runners are noisy, so the diff is informational — it never fails the job.
# A missing baseline (first run, expired artifact) is skipped silently.
set -euo pipefail

baseline=${1:?usage: bench_diff.sh <baseline.json> <current.json> [pct]}
current=${2:?usage: bench_diff.sh <baseline.json> <current.json> [pct]}
threshold=${3:-25}

if [ ! -f "$baseline" ]; then
  echo "bench_diff: no baseline at $baseline — skipping comparison"
  exit 0
fi
if [ ! -f "$current" ]; then
  echo "bench_diff: current report $current missing" >&2
  exit 1
fi

python3 - "$baseline" "$current" "$threshold" <<'EOF'
import json
import sys

baseline_path, current_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = json.load(f)
with open(current_path) as f:
    current = json.load(f)

# Configuration fields — identity, not performance; excluded from the diff.
CONFIG_KEYS = {"bench", "n", "domain", "passes", "threads", "stream_n",
               "sweep_keys", "sweep_n"}

def numeric_keys(report):
    return {k for k, v in report.items()
            if k not in CONFIG_KEYS and isinstance(v, (int, float))
            and not isinstance(v, bool)}

union = numeric_keys(baseline) | numeric_keys(current)

# Preferred ordering groups rows by pipeline stage; anything the prefixes
# don't cover (future rows) trails alphabetically rather than vanishing.
PREFIX_ORDER = ["embed_map_", "embed_", "detect_prf_", "detect_simd_",
                "detect_oneshot_", "detect_plan_", "detect_", "index_",
                "load_", "e2e_", "csv_", "catm_", "stream_", "sweep_"]

def sort_key(key):
    for rank, prefix in enumerate(PREFIX_ORDER):
        if key.startswith(prefix):
            return (rank, key)
    return (len(PREFIX_ORDER), key)

def row_threshold(key):
    # The sweep rows guard the detect-engine amortization story and get a
    # tighter 10% bar; everything else uses the CLI-level default.
    return min(threshold, 10.0) if key.startswith("sweep_") else threshold

print(f"{'bench row':<36}{'baseline':>14}{'current':>14}{'delta':>10}")
for key in sorted(union, key=sort_key):
    old, new = baseline.get(key), current.get(key)
    if old is None or new is None:
        print(f"{key:<36}{'-' if old is None else old:>14}"
              f"{'-' if new is None else new:>14}{'n/a':>10}")
        if new is None:
            print(f"::warning title=bench row dropped::{key} present in the "
                  f"baseline report but missing from this run's — a bench "
                  f"row was removed or the bench is truncating output")
        continue
    delta = 0.0 if old == 0 else (new - old) / old * 100.0
    print(f"{key:<36}{old:>14}{new:>14}{delta:>+9.1f}%")
    # "_ms" rows are durations (lower is better); everything else is a rate
    # or gain where a drop is the regression.
    regressed = (delta > row_threshold(key) if key.endswith("_ms")
                 else delta < -row_threshold(key))
    if regressed:
        direction = "rose" if key.endswith("_ms") else "fell"
        print(f"::warning title=throughput regression::{key} {direction} "
              f"{abs(delta):.1f}% vs baseline ({old} -> {new})")
EOF
