#!/usr/bin/env bash
# Diffs the numeric rows of two BENCH_throughput.json reports:
#   scripts/bench_diff.sh <baseline.json> <current.json> [regression-pct]
#
# Compares every numeric key present in either report (the union, in a
# preferred pipeline order: embed, detect, PRF breakdown, load/e2e format
# rows, streaming grid — unknown keys trail alphabetically), so newly added
# rows such as load_catm_tps / e2e_format_gain are picked up without
# touching this script. Emits a GitHub warning annotation when a key
# regresses by more than `regression-pct` (default 25%), and another when a
# row present in the baseline is missing from the current report — a
# silently dropped bench row is a coverage regression, not noise.
#
# By default the diff is informational (shared CI runners are noisy) and
# never fails. With BENCH_DIFF_GATE=1 it becomes a soft gate: regressions
# beyond the CLI threshold and dropped rows are emitted as ::error
# annotations and the script exits 1 — unless BENCH_DIFF_WAIVE is set
# non-empty (CI sets it when the commit message carries a BENCH_WAIVE
# token), which downgrades the gate back to warnings. The tighter 10% bars
# on sweep_/embed_prf_/stream_prf_ rows stay warnings either way: the gate
# fires only past the CLI-level threshold.
#
# A missing or unparseable baseline (first run, expired or truncated
# artifact) is skipped silently — the gate only fires on real measurements.
set -euo pipefail

baseline=${1:?usage: bench_diff.sh <baseline.json> <current.json> [pct]}
current=${2:?usage: bench_diff.sh <baseline.json> <current.json> [pct]}
threshold=${3:-25}

if [ ! -f "$baseline" ]; then
  echo "bench_diff: no baseline at $baseline — skipping comparison"
  exit 0
fi
if [ ! -f "$current" ]; then
  echo "bench_diff: current report $current missing" >&2
  exit 1
fi

python3 - "$baseline" "$current" "$threshold" <<'EOF'
import json
import os
import sys

baseline_path, current_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
# A truncated or corrupt baseline artifact is "no baseline", not a failure:
# the gate must only ever fire on a real measured regression.
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except (OSError, ValueError) as error:
    print(f"bench_diff: unreadable baseline {baseline_path} ({error}) — "
          f"skipping comparison")
    sys.exit(0)
with open(current_path) as f:
    current = json.load(f)

gate = os.environ.get("BENCH_DIFF_GATE", "") not in ("", "0")
waived = os.environ.get("BENCH_DIFF_WAIVE", "") != ""

# Configuration fields — identity, not performance; excluded from the diff.
CONFIG_KEYS = {"bench", "n", "domain", "passes", "threads", "stream_n",
               "sweep_keys", "sweep_n"}

def numeric_keys(report):
    return {k for k, v in report.items()
            if k not in CONFIG_KEYS and isinstance(v, (int, float))
            and not isinstance(v, bool)}

union = numeric_keys(baseline) | numeric_keys(current)

# Preferred ordering groups rows by pipeline stage; anything the prefixes
# don't cover (future rows) trails alphabetically rather than vanishing.
PREFIX_ORDER = ["embed_map_", "embed_prf_", "embed_", "detect_prf_",
                "detect_simd_", "detect_oneshot_", "detect_plan_", "detect_",
                "index_", "load_", "e2e_", "csv_", "catm_", "stream_prf_",
                "stream_", "sweep_"]

def sort_key(key):
    for rank, prefix in enumerate(PREFIX_ORDER):
        if key.startswith(prefix):
            return (rank, key)
    return (len(PREFIX_ORDER), key)

# Rows guarding a specific amortization story get a tighter 10% bar:
# sweep_ (detect-engine per-key cost), embed_prf_ (the fused embed
# pipeline) and stream_prf_ (steady-state streaming inserts). Everything
# else uses the CLI-level default.
TIGHT_PREFIXES = ("sweep_", "embed_prf_", "stream_prf_")

def row_threshold(key):
    return min(threshold, 10.0) if key.startswith(TIGHT_PREFIXES) else threshold

failures = 0

def annotate(title, message, gating):
    global failures
    # A gating finding becomes ::error (and a nonzero exit) only when the
    # gate is armed and not waived; otherwise it stays a warning.
    if gating and gate and not waived:
        failures += 1
        print(f"::error title={title}::{message}")
    else:
        print(f"::warning title={title}::{message}")

print(f"{'bench row':<40}{'baseline':>14}{'current':>14}{'delta':>10}")
for key in sorted(union, key=sort_key):
    old, new = baseline.get(key), current.get(key)
    if old is None or new is None:
        print(f"{key:<40}{'-' if old is None else old:>14}"
              f"{'-' if new is None else new:>14}{'n/a':>10}")
        if new is None:
            annotate("bench row dropped",
                     f"{key} present in the baseline report but missing from "
                     f"this run's — a bench row was removed or the bench is "
                     f"truncating output", gating=True)
        continue
    delta = 0.0 if old == 0 else (new - old) / old * 100.0
    print(f"{key:<40}{old:>14}{new:>14}{delta:>+9.1f}%")
    # "_ms" rows are durations (lower is better); everything else is a rate
    # or gain where a drop is the regression.
    regressed = (delta > row_threshold(key) if key.endswith("_ms")
                 else delta < -row_threshold(key))
    if regressed:
        direction = "rose" if key.endswith("_ms") else "fell"
        # Gate only past the CLI threshold — tightened 10% bars stay
        # advisory so shared-runner noise cannot fail the leg.
        past_gate = (delta > threshold if key.endswith("_ms")
                     else delta < -threshold)
        annotate("throughput regression",
                 f"{key} {direction} {abs(delta):.1f}% vs baseline "
                 f"({old} -> {new})", gating=past_gate)

if failures:
    if gate:
        print(f"bench_diff: {failures} gating regression(s) — failing the "
              f"bench leg (waive with BENCH_WAIVE in the commit message)")
    sys.exit(1)
EOF
