#!/usr/bin/env bash
# Diffs the embed and detect rows of two BENCH_throughput.json reports:
#   scripts/bench_diff.sh <baseline.json> <current.json> [regression-pct]
#
# Prints a per-key comparison of the embed_* / detect_* / stream_*
# throughput fields (including the per-PRF-backend detect breakdown and the
# streaming-service batch × session grid) and emits a GitHub
# warning annotation when a key regresses by more than `regression-pct`
# (default 25%). Shared CI runners are noisy, so the diff is informational
# — it never fails the job — but the annotation makes a throughput
# regression visible on the PR. A missing baseline (first run, expired
# artifact) is skipped silently.
set -euo pipefail

baseline=${1:?usage: bench_diff.sh <baseline.json> <current.json> [pct]}
current=${2:?usage: bench_diff.sh <baseline.json> <current.json> [pct]}
threshold=${3:-25}

if [ ! -f "$baseline" ]; then
  echo "bench_diff: no baseline at $baseline — skipping comparison"
  exit 0
fi
if [ ! -f "$current" ]; then
  echo "bench_diff: current report $current missing" >&2
  exit 1
fi

python3 - "$baseline" "$current" "$threshold" <<'EOF'
import json
import sys

baseline_path, current_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = json.load(f)
with open(current_path) as f:
    current = json.load(f)

keys = [
    "embed_serial_tps",
    "embed_parallel_tps",
    "embed_speedup",
    "embed_map_serial_tps",
    "embed_map_parallel_tps",
    "embed_map_speedup",
    "detect_serial_tps",
    "detect_parallel_tps",
    "detect_speedup",
    "detect_prf_keyed_hash_serial_tps",
    "detect_prf_hmac_sha256_serial_tps",
    "detect_prf_siphash24_serial_tps",
    "detect_prf_siphash24_parallel_tps",
    "detect_prf_fast_gain",
    "stream_s1_b1_tps",
    "stream_s1_b64_tps",
    "stream_s1_b1024_tps",
    "stream_s8_b1_tps",
    "stream_s8_b64_tps",
    "stream_s8_b1024_tps",
    "stream_batch_gain",
]

print(f"{'bench row':<36}{'baseline':>14}{'current':>14}{'delta':>10}")
for key in keys:
    old, new = baseline.get(key), current.get(key)
    if old is None or new is None:
        # Baselines from before the sharded-embed / PRF-breakdown rows lack
        # the newer keys.
        print(f"{key:<36}{'-' if old is None else old:>14}"
              f"{'-' if new is None else new:>14}{'n/a':>10}")
        continue
    delta = 0.0 if old == 0 else (new - old) / old * 100.0
    print(f"{key:<36}{old:>14}{new:>14}{delta:>+9.1f}%")
    if delta < -threshold:
        print(f"::warning title=throughput regression::{key} fell "
              f"{-delta:.1f}% vs baseline ({old} -> {new})")
EOF
