#!/usr/bin/env bash
# Smoke-runs every bench binary with a tiny workload (1 pass, small N) so
# perf code keeps building *and running* on every commit. Usage:
#   scripts/bench_smoke.sh [build_dir]   (default: build)
set -euo pipefail

build_dir=${1:-build}
bench_dir="$build_dir/bench"

if ! ls "$bench_dir"/bench_* >/dev/null 2>&1; then
  echo "error: no bench binaries under $bench_dir (build the 'bench' target)" >&2
  exit 1
fi

status=0
for bin in "$bench_dir"/bench_*; do
  name=$(basename "$bin")
  case "$name" in
    bench_micro_throughput)
      # Google Benchmark flags; one tiny repetition per benchmark.
      args=(--benchmark_min_time=0.01)
      ;;
    bench_throughput)
      # Also smoke the BENCH_throughput.json emitter.
      export CATMARK_BENCH_JSON="$build_dir/BENCH_throughput.json"
      args=(--n 400 --passes 1 --domain 50)
      ;;
    *)
      args=(--n 400 --passes 1 --domain 50)
      ;;
  esac
  if timeout 300 "$bin" "${args[@]}" >/dev/null; then
    echo "ok:   $name"
  else
    echo "FAIL: $name (${args[*]})" >&2
    status=1
  fi
done
exit $status
