#!/usr/bin/env bash
# clang-format check over the C++ files changed relative to a base ref.
# The repo is formatted incrementally: only files a PR touches must be
# clang-format clean, so pre-existing files never block unrelated work.
#   scripts/check_format.sh [base_ref]   (default: origin/main)
set -euo pipefail

base_ref=${1:-origin/main}
clang_format=${CLANG_FORMAT:-clang-format}

if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "error: $clang_format not found (set CLANG_FORMAT=...)" >&2
  exit 1
fi

merge_base=$(git merge-base "$base_ref" HEAD 2>/dev/null || echo "$base_ref")
mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$merge_base" HEAD -- \
    '*.cc' '*.h' '*.cpp' '*.hpp' | sort -u)

if [ ${#files[@]} -eq 0 ]; then
  echo "no C++ files changed vs $merge_base; nothing to check"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  if ! "$clang_format" --dry-run --Werror "$f" 2>/dev/null; then
    echo "needs format: $f" >&2
    "$clang_format" --dry-run "$f" 2>&1 | head -20 >&2 || true
    status=1
  fi
done

if [ $status -ne 0 ]; then
  echo "run: $clang_format -i <files> (style: .clang-format)" >&2
fi
exit $status
