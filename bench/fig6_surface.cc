// Figure 6 — the composite surface: mark loss (%) over the
// (attack size, e) plane. "Note the lower-left to upper-right tilt."

#include <cstdio>
#include <vector>

#include "attack/attacks.h"
#include "exp/harness.h"

namespace catmark {
namespace {

void Run(ExperimentConfig config) {
  PrintTableTitle("Figure 6: mark loss (%) surface over (attack size, e)");
  std::printf("N=%zu  |wm|=%zu  passes=%zu\n", config.num_tuples,
              config.wm_bits, config.passes);

  const std::vector<double> attacks = {0.0, 0.1, 0.2, 0.3, 0.4,
                                       0.5, 0.6, 0.7, 0.8};
  const std::vector<std::uint64_t> es = {10, 35, 65, 100, 135, 170, 200};

  // Header row: attack sizes across.
  std::printf("%-8s", "e \\ atk%");
  for (const double a : attacks) std::printf(" %6.0f", a * 100.0);
  std::printf("\n");

  for (const std::uint64_t e : es) {
    WatermarkParams params;
    params.e = e;
    std::printf("%-8llu", static_cast<unsigned long long>(e));
    for (const double attack : attacks) {
      const TrialOutcome outcome = RunAveragedTrial(
          config, params,
          [attack](const Relation& rel, std::uint64_t seed) {
            return SubsetAlterationAttack(rel, "A", attack, seed);
          });
      std::printf(" %6.1f", outcome.mean_alteration_pct);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: near-zero plateau at low attack/low e rising toward\n"
      "the upper-right corner (high attack, high e) — the lower-left to\n"
      "upper-right tilt of the Figure 6 surface.\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
