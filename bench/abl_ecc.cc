// Ablation — ECC choice: majority voting (the paper's code) vs. no ECC vs.
// block repetition vs. Hamming(7,4)+repetition, under the Figure 4 attack.

#include <cstdio>
#include <vector>

#include "attack/attacks.h"
#include "exp/harness.h"

namespace catmark {
namespace {

void Run(const ExperimentConfig& config) {
  PrintTableTitle("Ablation: ECC family vs random-alteration attack (e=35)");
  std::printf("N=%zu  |wm|=%zu  passes=%zu\n", config.num_tuples,
              config.wm_bits, config.passes);
  PrintTableHeader({"attack (%)", "majority", "identity", "block-rep",
                    "hamming74"});

  for (const double attack : {0.1, 0.3, 0.5, 0.7}) {
    std::vector<std::string> row;
    row.push_back(FormatDouble(attack * 100.0, 0));
    for (const EccKind ecc :
         {EccKind::kMajorityVoting, EccKind::kIdentity,
          EccKind::kBlockRepetition, EccKind::kHamming74}) {
      WatermarkParams params;
      params.e = 35;
      params.ecc = ecc;
      if (ecc == EccKind::kIdentity) {
        // No-redundancy deployments concentrate the payload on |wm|
        // positions (otherwise most of the channel is wasted and clean
        // decoding already fails); this is the fair baseline.
        params.payload_length = config.wm_bits;
      } else {
        // Small-N runs (CI smoke) can derive a bandwidth N/e below the
        // code's minimum; pin the payload to the floor so every family
        // stays runnable at any N.
        const std::size_t min_payload =
            CreateEcc(ecc)->MinPayloadLength(config.wm_bits);
        const std::size_t derived = DerivePayloadLength(
            config.num_tuples, params.e, config.wm_bits);
        if (derived < min_payload) params.payload_length = min_payload;
      }
      const TrialOutcome outcome = RunAveragedTrial(
          config, params,
          [attack](const Relation& rel, std::uint64_t seed) {
            return SubsetAlterationAttack(rel, "A", attack, seed);
          });
      row.push_back(FormatDouble(outcome.mean_alteration_pct));
    }
    PrintTableRow(row);
  }
  std::printf(
      "\nExpected: identity (no redundancy) degrades fastest; majority\n"
      "voting and block repetition track each other under uniform attacks\n"
      "(damage is position-uniform); Hamming+repetition is comparable,\n"
      "trading repetitions for per-codeword correction.\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
