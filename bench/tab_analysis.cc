// Section 4.4 worked analysis — the paper's "table": false-positive
// probabilities, the P(15, 1200) random-attack example, the minimum-e
// derivation, and the expected final-mark alteration, each printed as
// paper-claimed vs. our closed form, plus a Monte-Carlo cross-check of the
// expected-alteration model against the real embedder under a real attack.

#include <cmath>
#include <cstdio>
#include <string>

#include "attack/attacks.h"
#include "core/analysis.h"
#include "exp/harness.h"

namespace catmark {
namespace {

std::string Sci(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

void FalsePositives() {
  PrintTableTitle("Section 4.4 (a): false-positive (court) probabilities");
  PrintTableHeader({"quantity", "paper", "computed"});
  PrintTableRow({"(1/2)^|wm|, |wm|=10", "9.77e-04",
                 Sci(FalsePositiveProbability(10))});
  PrintTableRow({"(1/2)^(N/e), N=6000 e=60", "7.8e-31",
                 Sci(FalsePositiveProbability(100))});
}

void AttackSuccess() {
  PrintTableTitle(
      "Section 4.4 (b): random attack success P(r=15, a=1200), e=60, p=0.7");
  RandomAttackModel model;
  model.attacked_tuples = 1200;
  model.e = 60;
  model.flip_probability = 0.7;
  PrintTableHeader({"method", "value"});
  PrintTableRow({"paper (CLT estimate)", "0.316"});
  PrintTableRow({"CLT (eq. 2)",
                 Sci(AttackSuccessProbability(model, 15, /*exact=*/false))});
  PrintTableRow({"exact binomial tail",
                 Sci(AttackSuccessProbability(model, 15, /*exact=*/true))});
}

void MinimumE() {
  PrintTableTitle(
      "Section 4.4 (c): minimum e for vulnerability <= 10% "
      "(a=600, r=15, p=0.7)");
  const double n_star = MaxHitTuplesForVulnerabilityBound(15, 0.7, 0.1);
  const std::uint64_t e_min = MinimumEForVulnerability(600, 15, 0.7, 0.1);
  PrintTableHeader({"quantity", "paper", "computed"});
  PrintTableRow({"max marked tuples hit n*", "-", FormatDouble(n_star, 1)});
  PrintTableRow({"minimum e", "23", std::to_string(e_min)});
  PrintTableRow({"embedding alteration 1/e (%)", "4.3",
                 FormatDouble(100.0 / static_cast<double>(e_min), 1)});
  std::printf(
      "\nNote: the paper's own arithmetic for this example is not exactly\n"
      "recoverable from equation (2); our solver follows the same method\n"
      "(z-score bound on the binomial tail) and reports its exact result.\n"
      "See EXPERIMENTS.md.\n");
}

void ExpectedAlteration() {
  PrintTableTitle(
      "Section 4.4 (d): expected final mark alteration "
      "(r=15, |wm_data|=100, tecc=5%, |wm|=10)");
  PrintTableHeader({"quantity", "paper", "computed"});
  PrintTableRow(
      {"mark alteration (%)", "1.0",
       FormatDouble(100.0 * ExpectedMarkAlterationFraction(15, 100, 0.05, 10),
                    2)});
}

void MonteCarloCrossCheck(const ExperimentConfig& config) {
  // Empirical counterpart: run the real embedder + 20% random-alteration
  // attack and compare the measured mean mark alteration against the
  // closed-form expectation with r = (a/e) * p flipped payload bits
  // (uniform redraw over the domain flips an embedded LSB w.p. ~1/2).
  PrintTableTitle(
      "Section 4.4 (e): Monte-Carlo cross-check of the alteration model");
  WatermarkParams params;
  params.e = 60;
  const double attack = 0.20;

  const TrialOutcome outcome = RunAveragedTrial(
      config, params, [attack](const Relation& rel, std::uint64_t seed) {
        return SubsetAlterationAttack(rel, "A", attack, seed);
      });

  const double a = attack * static_cast<double>(config.num_tuples);
  const double p_flip = 0.5;
  const std::uint64_t r =
      static_cast<std::uint64_t>(a / static_cast<double>(params.e) * p_flip);
  const std::size_t payload =
      config.num_tuples / static_cast<std::size_t>(params.e);
  const double model_pct =
      100.0 *
      ExpectedMarkAlterationFraction(r, payload, /*tecc=*/0.05,
                                     config.wm_bits);

  PrintTableHeader({"quantity", "model", "measured"});
  PrintTableRow({"mark alteration at 20% attack (%)",
                 FormatDouble(model_pct),
                 FormatDouble(outcome.mean_alteration_pct)});
  std::printf(
      "\nThe closed form treats error propagation as uniform and stable;\n"
      "the measured value reflects the real majority-voting decoder, so\n"
      "agreement is expected in order of magnitude, not digit-for-digit.\n");
}

void Run(const ExperimentConfig& config) {
  FalsePositives();
  AttackSuccess();
  MinimumE();
  ExpectedAlteration();
  MonteCarloCrossCheck(config);
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
