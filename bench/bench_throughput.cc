// Embed/detect pipeline throughput: serial (1 worker) versus parallel
// (auto worker count) on the standard keyed categorical relation, verifying
// on the fly that both configurations produce bit-identical results. This is
// the perf trajectory for the ROADMAP's "as fast as the hardware allows"
// goal; the acceptance bar is >= 4x detection throughput at N = 1M on
// 8 cores.
//
//   bench_throughput [--n N] [--passes K] [--domain D] ...
//
// Environment:
//   CATMARK_THREADS      parallel worker count (default: hardware threads)
//   CATMARK_PRF          keyed-PRF backend of the headline rows (--prf wins;
//                        the detect PRF-breakdown rows sweep every backend)
//   CATMARK_BENCH_JSON   when set, write the machine-readable report there
//                        (the BENCH_throughput.json emitted by scripts/)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/domain.h"
#include "relation/value_index_column.h"

namespace catmark {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double serial_tps = 0.0;    // tuples/second, best of `passes` runs
  double parallel_tps = 0.0;
  double speedup = 0.0;
};

int Run(const ExperimentConfig& config) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = config.num_tuples;
  gen.domain_size = config.domain_size;
  gen.zipf_s = config.zipf_s;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);
  const double n = static_cast<double>(original.NumRows());

  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(config.base_seed);
  const BitVector wm = MakeWatermark(config.wm_bits, config.base_seed);
  WatermarkParams serial_params;
  serial_params.e = 60;
  serial_params.num_threads = 1;
  // --prf / CATMARK_PRF steer the headline rows; the PRF-breakdown section
  // below always sweeps every registered backend regardless.
  if (config.prf.has_value()) serial_params.prf = config.prf;
  WatermarkParams parallel_params = serial_params;
  parallel_params.num_threads = DefaultThreadCount();

  EmbedOptions embed_options;
  embed_options.key_attr = "K";
  embed_options.target_attr = "A";

  Measurement embed;
  Relation marked = original;
  EmbedReport report;
  std::size_t embed_apply_shards = 1;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, serial_params).Embed(rel, embed_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      report = std::move(r).value();
      marked = std::move(rel);
      if (n / secs > embed.serial_tps) embed.serial_tps = n / secs;
    }
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, parallel_params).Embed(rel, embed_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK_EQ(r.value().altered_tuples, report.altered_tuples)
          << "parallel embed diverged from serial";
      CATMARK_CHECK(rel.SameContent(marked))
          << "parallel embed produced different data";
      embed_apply_shards = r.value().apply_shards;
      if (n / secs > embed.parallel_tps) embed.parallel_tps = n / secs;
    }
  }
  embed.speedup = embed.parallel_tps / embed.serial_tps;

  // Figure 1(b) map-mode embed: exercises the prefix-sum map-index
  // assignment and per-shard segment splicing (the guard is off here — map
  // mode plus the draining guard is the documented serial fallback). The
  // serialized maps are compared so a splice-order bug fails the bench, not
  // just the unit suite.
  WatermarkParams map_serial_params = serial_params;
  map_serial_params.min_category_keep = 0;
  WatermarkParams map_parallel_params = parallel_params;
  map_parallel_params.min_category_keep = 0;
  EmbedOptions map_options = embed_options;
  map_options.build_embedding_map = true;

  Measurement embed_map;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    std::string serial_map;
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, map_serial_params).Embed(rel, map_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      serial_map = r.value().embedding_map.Serialize();
      if (n / secs > embed_map.serial_tps) embed_map.serial_tps = n / secs;
    }
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, map_parallel_params).Embed(rel, map_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().embedding_map.Serialize() == serial_map)
          << "sharded map embed spliced a different embedding map";
      if (n / secs > embed_map.parallel_tps) {
        embed_map.parallel_tps = n / secs;
      }
    }
  }
  embed_map.speedup = embed_map.parallel_tps / embed_map.serial_tps;

  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;

  Measurement detect;
  DetectionResult serial_detection;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      const auto start = Clock::now();
      Result<DetectionResult> r = Detector(keys, serial_params)
                                      .Detect(marked, detect_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      serial_detection = std::move(r).value();
      if (n / secs > detect.serial_tps) detect.serial_tps = n / secs;
    }
    {
      const auto start = Clock::now();
      Result<DetectionResult> r = Detector(keys, parallel_params)
                                      .Detect(marked, detect_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().wm == serial_detection.wm)
          << "parallel detect decoded a different mark";
      CATMARK_CHECK_EQ(r.value().usable_votes, serial_detection.usable_votes)
          << "parallel detect tallied different votes";
      if (n / secs > detect.parallel_tps) detect.parallel_tps = n / secs;
    }
  }
  detect.speedup = detect.parallel_tps / detect.serial_tps;

  // Detect PRF breakdown: one embed + timed detects per registered keyed-PRF
  // backend, so BENCH_throughput.json tracks exactly where the fitness-hash
  // dominated detect path stands per primitive. Each backend detects its own
  // embedding (a mark embedded under one PRF is invisible under another);
  // serial-vs-parallel bit-identity is checked inline like the main rows.
  constexpr PrfKind kPrfSweep[] = {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                                   PrfKind::kSipHash24};
  constexpr std::size_t kNumPrfs = std::size(kPrfSweep);
  static_assert(kPrfSweep[0] == PrfKind::kKeyedHash &&
                kPrfSweep[kNumPrfs - 1] == PrfKind::kSipHash24,
                "prf_fast_gain and the JSON field order index by position");
  Measurement prf_detect[kNumPrfs];
  for (std::size_t p = 0; p < kNumPrfs; ++p) {
    WatermarkParams prf_serial = serial_params;
    prf_serial.prf = kPrfSweep[p];
    WatermarkParams prf_parallel = parallel_params;
    prf_parallel.prf = kPrfSweep[p];

    Relation prf_marked = original;
    Result<EmbedReport> embed_r =
        Embedder(keys, prf_serial).Embed(prf_marked, embed_options, wm);
    CATMARK_CHECK(embed_r.ok()) << embed_r.status().ToString();

    DetectOptions prf_options = detect_options;
    prf_options.payload_length = embed_r.value().payload_length;
    prf_options.domain = embed_r.value().domain;

    DetectionResult serial_r;
    for (std::size_t pass = 0; pass < config.passes; ++pass) {
      {
        const auto start = Clock::now();
        Result<DetectionResult> r =
            Detector(keys, prf_serial)
                .Detect(prf_marked, prf_options, wm.size());
        const double secs = SecondsSince(start);
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        serial_r = std::move(r).value();
        if (n / secs > prf_detect[p].serial_tps) {
          prf_detect[p].serial_tps = n / secs;
        }
      }
      {
        const auto start = Clock::now();
        Result<DetectionResult> r =
            Detector(keys, prf_parallel)
                .Detect(prf_marked, prf_options, wm.size());
        const double secs = SecondsSince(start);
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        CATMARK_CHECK(r.value().wm == serial_r.wm)
            << "parallel detect diverged under "
            << std::string(PrfKindName(kPrfSweep[p]));
        CATMARK_CHECK_EQ(r.value().usable_votes, serial_r.usable_votes)
            << "parallel detect tallied different votes under "
            << std::string(PrfKindName(kPrfSweep[p]));
        if (n / secs > prf_detect[p].parallel_tps) {
          prf_detect[p].parallel_tps = n / secs;
        }
      }
    }
    prf_detect[p].speedup =
        prf_detect[p].parallel_tps / prf_detect[p].serial_tps;
    if (serial_r.positions_present == serial_r.payload_length) {
      CATMARK_CHECK(serial_r.wm == wm)
          << "round trip failed under "
          << std::string(PrfKindName(kPrfSweep[p]));
    }
  }
  // Fast-backend gain over the compatibility default, single-thread — the
  // ROADMAP's detect acceptance number.
  const double prf_fast_gain =
      prf_detect[0].serial_tps > 0.0
          ? prf_detect[kNumPrfs - 1].serial_tps / prf_detect[0].serial_tps
          : 0.0;

  // Plan-build microstage: domain recovery + the domain-index view of the
  // target column. On the columnar store both are O(dictionary) — sub-
  // millisecond, and independent of the thread count — so it is reported
  // as an absolute best-of-passes time (a tuples/sec rate over a
  // microsecond-scale stage would be clock-granularity noise in the
  // per-PR artifact).
  double index_ms = std::numeric_limits<double>::infinity();
  const std::size_t target_col = static_cast<std::size_t>(
      marked.schema().ColumnIndex(embed_options.target_attr));
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const auto start = Clock::now();
    const CategoricalDomain domain =
        CategoricalDomain::FromRelationColumn(marked, target_col).value();
    const ValueIndexColumn view =
        ValueIndexColumn::Build(marked, target_col, domain, 1);
    const double ms = SecondsSince(start) * 1e3;
    CATMARK_CHECK_EQ(view.size(), marked.NumRows());
    CATMARK_CHECK(domain == report.domain)
        << "recovered domain diverged from the embed report";
    if (ms < index_ms) index_ms = ms;
  }
  // Tiny smoke configurations may not cover every payload position; only a
  // fully-filled channel is required to round-trip exactly.
  if (serial_detection.positions_present == serial_detection.payload_length) {
    CATMARK_CHECK(serial_detection.wm == wm)
        << "round trip failed — bench results would be meaningless";
  }

  PrintTableTitle("embed/detect pipeline throughput (tuples/sec, best of "
                  "passes)");
  PrintTableHeader({"stage", "serial", "parallel", "speedup", "threads"});
  PrintTableRow({"embed", FormatDouble(embed.serial_tps, 0),
                 FormatDouble(embed.parallel_tps, 0),
                 FormatDouble(embed.speedup, 2),
                 std::to_string(parallel_params.num_threads)});
  PrintTableRow({"embed(map)", FormatDouble(embed_map.serial_tps, 0),
                 FormatDouble(embed_map.parallel_tps, 0),
                 FormatDouble(embed_map.speedup, 2),
                 std::to_string(parallel_params.num_threads)});
  PrintTableRow({"detect", FormatDouble(detect.serial_tps, 0),
                 FormatDouble(detect.parallel_tps, 0),
                 FormatDouble(detect.speedup, 2),
                 std::to_string(parallel_params.num_threads)});
  for (std::size_t p = 0; p < kNumPrfs; ++p) {
    PrintTableRow({"detect[" + std::string(PrfKindName(kPrfSweep[p])) + "]",
                   FormatDouble(prf_detect[p].serial_tps, 0),
                   FormatDouble(prf_detect[p].parallel_tps, 0),
                   FormatDouble(prf_detect[p].speedup, 2),
                   std::to_string(parallel_params.num_threads)});
  }
  PrintTableRow({"detect prf gain", FormatDouble(prf_fast_gain, 2) + "x",
                 "(siphash24 / keyed-hash, serial)", "-", "1"});
  PrintTableRow(
      {"plan/index (ms)", FormatDouble(index_ms, 3), "-", "-", "1"});

  if (const char* json_path = std::getenv("CATMARK_BENCH_JSON")) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_throughput: cannot write %s\n", json_path);
      return 1;
    }
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"bench_throughput\",\n"
        "  \"n\": %zu,\n"
        "  \"domain\": %zu,\n"
        "  \"passes\": %zu,\n"
        "  \"threads\": %zu,\n"
        "  \"embed_serial_tps\": %.0f,\n"
        "  \"embed_parallel_tps\": %.0f,\n"
        "  \"embed_speedup\": %.3f,\n"
        "  \"embed_apply_shards\": %zu,\n"
        "  \"embed_map_serial_tps\": %.0f,\n"
        "  \"embed_map_parallel_tps\": %.0f,\n"
        "  \"embed_map_speedup\": %.3f,\n"
        "  \"detect_serial_tps\": %.0f,\n"
        "  \"detect_parallel_tps\": %.0f,\n"
        "  \"detect_speedup\": %.3f,\n"
        "  \"detect_prf_keyed_hash_serial_tps\": %.0f,\n"
        "  \"detect_prf_keyed_hash_parallel_tps\": %.0f,\n"
        "  \"detect_prf_hmac_sha256_serial_tps\": %.0f,\n"
        "  \"detect_prf_hmac_sha256_parallel_tps\": %.0f,\n"
        "  \"detect_prf_siphash24_serial_tps\": %.0f,\n"
        "  \"detect_prf_siphash24_parallel_tps\": %.0f,\n"
        "  \"detect_prf_fast_gain\": %.3f,\n"
        "  \"index_build_ms\": %.4f\n"
        "}\n",
        config.num_tuples, config.domain_size, config.passes,
        parallel_params.num_threads, embed.serial_tps, embed.parallel_tps,
        embed.speedup, embed_apply_shards, embed_map.serial_tps,
        embed_map.parallel_tps, embed_map.speedup, detect.serial_tps,
        detect.parallel_tps, detect.speedup, prf_detect[0].serial_tps,
        prf_detect[0].parallel_tps, prf_detect[1].serial_tps,
        prf_detect[1].parallel_tps, prf_detect[2].serial_tps,
        prf_detect[2].parallel_tps, prf_fast_gain, index_ms);
    out << buf;
    std::printf("json report: %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  const catmark::ExperimentConfig config =
      catmark::ExperimentConfig::FromArgs(argc, argv);
  return catmark::Run(config);
}
