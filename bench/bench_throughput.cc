// Embed/detect pipeline throughput: serial (1 worker) versus parallel
// (auto worker count) on the standard keyed categorical relation, verifying
// on the fly that both configurations produce bit-identical results. This is
// the perf trajectory for the ROADMAP's "as fast as the hardware allows"
// goal; the acceptance bar is >= 4x detection throughput at N = 1M on
// 8 cores.
//
//   bench_throughput [--n N] [--passes K] [--domain D] ...
//
// Environment:
//   CATMARK_THREADS      parallel worker count (default: hardware threads)
//   CATMARK_PRF          keyed-PRF backend of the headline rows (--prf wins;
//                        the detect PRF-breakdown rows sweep every backend)
//   CATMARK_BENCH_JSON   when set, write the machine-readable report there
//                        (the BENCH_throughput.json emitted by scripts/)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"
#include "core/detect_engine.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "crypto/siphash_simd.h"
#include "ecc/code.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/catm_io.h"
#include "relation/csv.h"
#include "relation/domain.h"
#include "relation/value_index_column.h"
#include "service/service.h"
#include "service/session.h"

namespace catmark {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double serial_tps = 0.0;    // tuples/second, best of `passes` runs
  double parallel_tps = 0.0;
  double speedup = 0.0;
};

// Faithful reconstruction of the seed-era one-row-at-a-time incremental
// insert path — the batch=1 baseline of the streaming grid. Everything the
// StreamSession amortizes is deliberately paid per row here, exactly as the
// pre-service IncrementalWatermarker did: two column-name lookups, a fresh
// heap-allocated HashScratch, single-shot (unbatched) PRF calls, and a
// per-row AppendRow through the full variant-dispatch intern path.
struct LegacyRowInserter {
  WatermarkParams params;
  CategoricalDomain domain;
  std::size_t payload_length = 0;
  BitVector wm_data;
  std::unique_ptr<KeyedPrf> prf_k1;
  std::unique_ptr<KeyedPrf> prf_k2;

  LegacyRowInserter(const WatermarkKeySet& keys, const WatermarkParams& p,
                    const EmbedReport& report, const BitVector& wm)
      : params(p), domain(report.domain),
        payload_length(report.payload_length) {
    params.prf = params.prf.value_or(report.prf);
    prf_k1 = CreateKeyedPrf(*params.prf, keys.k1, params.hash_algo);
    prf_k2 = CreateKeyedPrf(*params.prf, keys.k2, params.hash_algo);
    wm_data = CreateEcc(params.ecc)->Encode(wm, payload_length).value();
  }

  bool Insert(Relation& rel, Row row) const {
    const std::size_t key_col =
        rel.schema().ColumnIndexOrError("K").value();
    const std::size_t target_col =
        rel.schema().ColumnIndexOrError("A").value();
    CATMARK_CHECK_EQ(row.size(), rel.schema().num_columns());
    bool fit = false;
    if (!row[key_col].is_null()) {
      HashScratch scratch;
      scratch.reserve(64);
      const std::uint64_t h1 = HashValue(*prf_k1, row[key_col], scratch);
      if (h1 % params.e == 0) {
        fit = true;
        const std::size_t idx =
            PayloadIndexFromHash(HashValue(*prf_k2, row[key_col], scratch),
                                 payload_length, params.bit_index_mode);
        const std::size_t t =
            SelectValueIndex(h1, domain.size(), wm_data.Get(idx));
        row[target_col] = domain.value(t);
      }
    }
    CATMARK_CHECK(rel.AppendRow(std::move(row)).ok());
    return fit;
  }
};

int Run(const ExperimentConfig& config) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = config.num_tuples;
  gen.domain_size = config.domain_size;
  gen.zipf_s = config.zipf_s;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);
  const double n = static_cast<double>(original.NumRows());

  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(config.base_seed);
  const BitVector wm = MakeWatermark(config.wm_bits, config.base_seed);
  WatermarkParams serial_params;
  serial_params.e = 60;
  serial_params.num_threads = 1;
  // --prf / CATMARK_PRF steer the headline rows; the PRF-breakdown section
  // below always sweeps every registered backend regardless.
  if (config.prf.has_value()) serial_params.prf = config.prf;
  WatermarkParams parallel_params = serial_params;
  parallel_params.num_threads = DefaultThreadCount();

  EmbedOptions embed_options;
  embed_options.key_attr = "K";
  embed_options.target_attr = "A";

  Measurement embed;
  Relation marked = original;
  EmbedReport report;
  std::size_t embed_apply_shards = 1;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, serial_params).Embed(rel, embed_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      report = std::move(r).value();
      marked = std::move(rel);
      if (n / secs > embed.serial_tps) embed.serial_tps = n / secs;
    }
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, parallel_params).Embed(rel, embed_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK_EQ(r.value().altered_tuples, report.altered_tuples)
          << "parallel embed diverged from serial";
      CATMARK_CHECK(rel.SameContent(marked))
          << "parallel embed produced different data";
      embed_apply_shards = r.value().apply_shards;
      if (n / secs > embed.parallel_tps) embed.parallel_tps = n / secs;
    }
  }
  embed.speedup = embed.parallel_tps / embed.serial_tps;

  if (!config.dump_relation.empty()) {
    const Status saved = SaveRelation(marked, config.dump_relation);
    CATMARK_CHECK(saved.ok()) << saved.ToString();
    std::printf("dumped marked relation: %s\n",
                config.dump_relation.c_str());
  }

  // Figure 1(b) map-mode embed: exercises the prefix-sum map-index
  // assignment and per-shard segment splicing (the guard is off here — map
  // mode plus the draining guard is the documented serial fallback). The
  // serialized maps are compared so a splice-order bug fails the bench, not
  // just the unit suite.
  WatermarkParams map_serial_params = serial_params;
  map_serial_params.min_category_keep = 0;
  WatermarkParams map_parallel_params = parallel_params;
  map_parallel_params.min_category_keep = 0;
  EmbedOptions map_options = embed_options;
  map_options.build_embedding_map = true;

  Measurement embed_map;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    std::string serial_map;
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, map_serial_params).Embed(rel, map_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      serial_map = r.value().embedding_map.Serialize();
      if (n / secs > embed_map.serial_tps) embed_map.serial_tps = n / secs;
    }
    {
      Relation rel = original;
      const auto start = Clock::now();
      Result<EmbedReport> r =
          Embedder(keys, map_parallel_params).Embed(rel, map_options, wm);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().embedding_map.Serialize() == serial_map)
          << "sharded map embed spliced a different embedding map";
      if (n / secs > embed_map.parallel_tps) {
        embed_map.parallel_tps = n / secs;
      }
    }
  }
  embed_map.speedup = embed_map.parallel_tps / embed_map.serial_tps;

  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;

  Measurement detect;
  DetectionResult serial_detection;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      const auto start = Clock::now();
      Result<DetectionResult> r = Detector(keys, serial_params)
                                      .Detect(marked, detect_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      serial_detection = std::move(r).value();
      if (n / secs > detect.serial_tps) detect.serial_tps = n / secs;
    }
    {
      const auto start = Clock::now();
      Result<DetectionResult> r = Detector(keys, parallel_params)
                                      .Detect(marked, detect_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().wm == serial_detection.wm)
          << "parallel detect decoded a different mark";
      CATMARK_CHECK_EQ(r.value().usable_votes, serial_detection.usable_votes)
          << "parallel detect tallied different votes";
      if (n / secs > detect.parallel_tps) detect.parallel_tps = n / secs;
    }
  }
  detect.speedup = detect.parallel_tps / detect.serial_tps;

  // Detect PRF breakdown: one embed + timed detects per registered keyed-PRF
  // backend, so BENCH_throughput.json tracks exactly where the fitness-hash
  // dominated detect path stands per primitive. Each backend detects its own
  // embedding (a mark embedded under one PRF is invisible under another);
  // serial-vs-parallel bit-identity is checked inline like the main rows.
  constexpr PrfKind kPrfSweep[] = {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                                   PrfKind::kSipHash24};
  constexpr std::size_t kNumPrfs = std::size(kPrfSweep);
  static_assert(kPrfSweep[0] == PrfKind::kKeyedHash &&
                kPrfSweep[kNumPrfs - 1] == PrfKind::kSipHash24,
                "prf_fast_gain and the JSON field order index by position");
  Measurement prf_detect[kNumPrfs];
  for (std::size_t p = 0; p < kNumPrfs; ++p) {
    WatermarkParams prf_serial = serial_params;
    prf_serial.prf = kPrfSweep[p];
    WatermarkParams prf_parallel = parallel_params;
    prf_parallel.prf = kPrfSweep[p];

    Relation prf_marked = original;
    Result<EmbedReport> embed_r =
        Embedder(keys, prf_serial).Embed(prf_marked, embed_options, wm);
    CATMARK_CHECK(embed_r.ok()) << embed_r.status().ToString();

    DetectOptions prf_options = detect_options;
    prf_options.payload_length = embed_r.value().payload_length;
    prf_options.domain = embed_r.value().domain;

    DetectionResult serial_r;
    for (std::size_t pass = 0; pass < config.passes; ++pass) {
      {
        const auto start = Clock::now();
        Result<DetectionResult> r =
            Detector(keys, prf_serial)
                .Detect(prf_marked, prf_options, wm.size());
        const double secs = SecondsSince(start);
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        serial_r = std::move(r).value();
        if (n / secs > prf_detect[p].serial_tps) {
          prf_detect[p].serial_tps = n / secs;
        }
      }
      {
        const auto start = Clock::now();
        Result<DetectionResult> r =
            Detector(keys, prf_parallel)
                .Detect(prf_marked, prf_options, wm.size());
        const double secs = SecondsSince(start);
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        CATMARK_CHECK(r.value().wm == serial_r.wm)
            << "parallel detect diverged under "
            << std::string(PrfKindName(kPrfSweep[p]));
        CATMARK_CHECK_EQ(r.value().usable_votes, serial_r.usable_votes)
            << "parallel detect tallied different votes under "
            << std::string(PrfKindName(kPrfSweep[p]));
        if (n / secs > prf_detect[p].parallel_tps) {
          prf_detect[p].parallel_tps = n / secs;
        }
      }
    }
    prf_detect[p].speedup =
        prf_detect[p].parallel_tps / prf_detect[p].serial_tps;
    if (serial_r.positions_present == serial_r.payload_length) {
      CATMARK_CHECK(serial_r.wm == wm)
          << "round trip failed under "
          << std::string(PrfKindName(kPrfSweep[p]));
    }
  }
  // Fast-backend gain over the compatibility default, single-thread — the
  // ROADMAP's detect acceptance number.
  const double prf_fast_gain =
      prf_detect[0].serial_tps > 0.0
          ? prf_detect[kNumPrfs - 1].serial_tps / prf_detect[0].serial_tps
          : 0.0;

  // Embed PRF breakdown — the embed-side mirror of the detect rows above.
  // Until ISSUE 10 the embed rows only ever ran the ambient backend, so the
  // fused plan/apply pipeline's headline (embed under siphash24) was
  // invisible in the artifact. Parallel runs are checked bit-identical to
  // serial inline, and the siphash24 embedding is additionally re-run under
  // forced-scalar SIMD dispatch and compared byte-for-byte — the SIMD lanes
  // are a throughput knob, never a result knob, on the embed side too.
  constexpr PrfKind kEmbedPrfSweep[] = {PrfKind::kKeyedHash,
                                        PrfKind::kSipHash24};
  constexpr std::size_t kNumEmbedPrfs = std::size(kEmbedPrfSweep);
  Measurement prf_embed[kNumEmbedPrfs];
  for (std::size_t p = 0; p < kNumEmbedPrfs; ++p) {
    WatermarkParams prf_serial = serial_params;
    prf_serial.prf = kEmbedPrfSweep[p];
    WatermarkParams prf_parallel = parallel_params;
    prf_parallel.prf = kEmbedPrfSweep[p];

    Relation serial_marked;
    EmbedReport serial_report;
    for (std::size_t pass = 0; pass < config.passes; ++pass) {
      {
        Relation rel = original;
        const auto start = Clock::now();
        Result<EmbedReport> r =
            Embedder(keys, prf_serial).Embed(rel, embed_options, wm);
        const double secs = SecondsSince(start);
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        serial_report = std::move(r).value();
        serial_marked = std::move(rel);
        if (n / secs > prf_embed[p].serial_tps) {
          prf_embed[p].serial_tps = n / secs;
        }
      }
      {
        Relation rel = original;
        const auto start = Clock::now();
        Result<EmbedReport> r =
            Embedder(keys, prf_parallel).Embed(rel, embed_options, wm);
        const double secs = SecondsSince(start);
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        CATMARK_CHECK_EQ(r.value().altered_tuples,
                         serial_report.altered_tuples)
            << "parallel embed diverged under "
            << std::string(PrfKindName(kEmbedPrfSweep[p]));
        CATMARK_CHECK(rel.SameContent(serial_marked))
            << "parallel embed produced different data under "
            << std::string(PrfKindName(kEmbedPrfSweep[p]));
        if (n / secs > prf_embed[p].parallel_tps) {
          prf_embed[p].parallel_tps = n / secs;
        }
      }
    }
    prf_embed[p].speedup =
        prf_embed[p].parallel_tps / prf_embed[p].serial_tps;
    if (kEmbedPrfSweep[p] == PrfKind::kSipHash24) {
      ForceSimdLevel(SimdLevel::kScalar);
      Relation rel = original;
      Result<EmbedReport> r =
          Embedder(keys, prf_serial).Embed(rel, embed_options, wm);
      ForceSimdLevel(std::nullopt);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK_EQ(r.value().altered_tuples, serial_report.altered_tuples)
          << "scalar-dispatch embed diverged from the ambient SIMD level";
      CATMARK_CHECK(rel.SameContent(serial_marked))
          << "scalar-dispatch embed produced different data than the "
             "ambient SIMD level";
    }
  }
  const double embed_prf_fast_gain =
      prf_embed[0].serial_tps > 0.0
          ? prf_embed[kNumEmbedPrfs - 1].serial_tps / prf_embed[0].serial_tps
          : 0.0;

  // SIMD dispatch + one-shot engine rows (siphash24, single thread). Two
  // stories in one embedding:
  //   detect_simd_*   — the identical fused one-shot detect timed at the
  //                     ambient dispatch level versus forced scalar, with
  //                     the verdicts checked bit-identical (the SIMD lanes
  //                     are a throughput knob, never a result knob);
  //   one-shot vs plan — Detector::Detect (the fused single-candidate path)
  //                     back-to-back against DetectEngine::Create + Detect
  //                     (the multi-candidate plan-then-pass split), pinning
  //                     the fused path's "no regression for the single-key
  //                     caller" guarantee in the per-PR artifact.
  WatermarkParams simd_params = serial_params;
  simd_params.prf = PrfKind::kSipHash24;
  Relation simd_marked = original;
  Result<EmbedReport> simd_embed =
      Embedder(keys, simd_params).Embed(simd_marked, embed_options, wm);
  CATMARK_CHECK(simd_embed.ok()) << simd_embed.status().ToString();
  DetectOptions simd_options = detect_options;
  simd_options.payload_length = simd_embed.value().payload_length;
  simd_options.domain = simd_embed.value().domain;

  const std::string simd_level_name(SimdLevelName(ActiveSimdLevel()));
  double detect_simd_tps = 0.0;
  double detect_simd_scalar_tps = 0.0;
  double plan_pass_tps = 0.0;
  DetectionResult simd_ref;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      const auto start = Clock::now();
      Result<DetectionResult> r = Detector(keys, simd_params)
                                      .Detect(simd_marked, simd_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      simd_ref = std::move(r).value();
      if (n / secs > detect_simd_tps) detect_simd_tps = n / secs;
    }
    {
      ForceSimdLevel(SimdLevel::kScalar);
      const auto start = Clock::now();
      Result<DetectionResult> r = Detector(keys, simd_params)
                                      .Detect(simd_marked, simd_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      ForceSimdLevel(std::nullopt);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().wm == simd_ref.wm)
          << "scalar dispatch decoded a different mark than "
          << simd_level_name;
      CATMARK_CHECK_EQ(r.value().usable_votes, simd_ref.usable_votes)
          << "scalar dispatch tallied different votes than "
          << simd_level_name;
      if (n / secs > detect_simd_scalar_tps) {
        detect_simd_scalar_tps = n / secs;
      }
    }
    {
      KeyCandidate candidate;
      candidate.keys = keys;
      candidate.params = simd_params;
      candidate.params.payload_length = simd_embed.value().payload_length;
      candidate.wm_len = wm.size();
      DetectEngineOptions engine_options;
      engine_options.key_attr = "K";
      engine_options.target_attr = "A";
      engine_options.domain_view = &*simd_options.domain;
      engine_options.payload_length = simd_embed.value().payload_length;
      engine_options.num_threads = 1;
      const auto start = Clock::now();
      Result<DetectEngine> engine =
          DetectEngine::Create(simd_marked, engine_options);
      CATMARK_CHECK(engine.ok()) << engine.status().ToString();
      Result<DetectionResult> r = engine.value().Detect(candidate);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().wm == simd_ref.wm)
          << "plan-then-pass decoded a different mark than one-shot";
      CATMARK_CHECK_EQ(r.value().usable_votes, simd_ref.usable_votes)
          << "plan-then-pass tallied different votes than one-shot";
      if (n / secs > plan_pass_tps) plan_pass_tps = n / secs;
    }
  }
  const double detect_simd_gain = detect_simd_scalar_tps > 0.0
                                      ? detect_simd_tps /
                                            detect_simd_scalar_tps
                                      : 0.0;
  const double oneshot_vs_plan_gain =
      plan_pass_tps > 0.0 ? detect_simd_tps / plan_pass_tps : 0.0;

  // Plan-build microstage: domain recovery + the domain-index view of the
  // target column. On the columnar store both are O(dictionary) — sub-
  // millisecond, and independent of the thread count — so it is reported
  // as an absolute best-of-passes time (a tuples/sec rate over a
  // microsecond-scale stage would be clock-granularity noise in the
  // per-PR artifact).
  double index_ms = std::numeric_limits<double>::infinity();
  const std::size_t target_col = static_cast<std::size_t>(
      marked.schema().ColumnIndex(embed_options.target_attr));
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const auto start = Clock::now();
    const CategoricalDomain domain =
        CategoricalDomain::FromRelationColumn(marked, target_col).value();
    const ValueIndexColumn view =
        ValueIndexColumn::Build(marked, target_col, domain, 1);
    const double ms = SecondsSince(start) * 1e3;
    CATMARK_CHECK_EQ(view.size(), marked.NumRows());
    CATMARK_CHECK(domain == report.domain)
        << "recovered domain diverged from the embed report";
    if (ms < index_ms) index_ms = ms;
  }
  // Tiny smoke configurations may not cover every payload position; only a
  // fully-filled channel is required to round-trip exactly.
  if (serial_detection.positions_present == serial_detection.payload_length) {
    CATMARK_CHECK(serial_detection.wm == wm)
        << "round trip failed — bench results would be meaningless";
  }

  // Streaming grid: sustained inserts/s vs batch size {1, 64, 1024} x
  // sessions {1, 8}. The batch=1 row is the seed-era legacy path
  // (LegacyRowInserter above); the batched rows run the StreamSession /
  // WatermarkService pipeline. Pinned to the compatibility keyed-hash
  // backend regardless of --prf / CATMARK_PRF: the grid's story is
  // batching, not hash choice. The base relation is capped so the
  // per-pass relation copies stay outside-timer noise, not the bench.
  WatermarkParams stream_params;
  stream_params.e = 60;
  stream_params.num_threads = 1;
  stream_params.prf = PrfKind::kKeyedHash;
  KeyedCategoricalConfig stream_gen;
  stream_gen.num_tuples = std::min<std::size_t>(config.num_tuples, 100000);
  stream_gen.domain_size = config.domain_size;
  stream_gen.zipf_s = config.zipf_s;
  stream_gen.seed = config.base_seed + 7;
  Relation stream_marked = GenerateKeyedCategorical(stream_gen);
  Result<EmbedReport> stream_embed =
      Embedder(keys, stream_params).Embed(stream_marked, embed_options, wm);
  CATMARK_CHECK(stream_embed.ok()) << stream_embed.status().ToString();
  const EmbedReport stream_report = std::move(stream_embed).value();
  const SessionSpec stream_spec = SessionSpec::FromEmbedReport(
      keys, stream_params, embed_options, stream_report, wm);
  const LegacyRowInserter legacy(keys, stream_params, stream_report, wm);

  // Repeat-heavy integer key stream (a live feed re-inserting the same
  // customers all day): ~64:1 repeats from a bounded pool, small enough
  // that the session's verdict cache stays L2-resident — the scenario the
  // resident cache exists for. Rows are pre-generated and copied outside
  // every timed region.
  const std::size_t stream_n = std::max<std::size_t>(
      20000, std::min<std::size_t>(config.num_tuples, 100000));
  const std::size_t key_pool = std::max<std::size_t>(512, stream_n / 64);
  std::vector<Row> stream_rows;
  stream_rows.reserve(stream_n);
  {
    std::mt19937_64 rng(config.base_seed);
    const Value filler = stream_spec.domain.value(0);  // in-domain category
    for (std::size_t i = 0; i < stream_n; ++i) {
      stream_rows.push_back(
          {Value(static_cast<std::int64_t>(5000000 + rng() % key_pool)),
           filler});
    }
  }

  constexpr std::size_t kBatchSizes[] = {1, 64, 1024};
  constexpr std::size_t kNumBatchSizes = std::size(kBatchSizes);
  constexpr std::size_t kStreamSessions = 8;
  double stream_s1_tps[kNumBatchSizes] = {};
  double stream_s8_tps[kNumBatchSizes] = {};
  Relation legacy_grown;   // last batch=1 run — the equivalence reference
  Relation batched_grown;  // last batch=1024 single-session run

  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    for (std::size_t b = 0; b < kNumBatchSizes; ++b) {
      const std::size_t batch = kBatchSizes[b];
      // sessions = 1.
      {
        Relation rel = stream_marked;
        std::vector<Row> rows = stream_rows;
        if (batch == 1) {
          const auto start = Clock::now();
          for (Row& row : rows) legacy.Insert(rel, std::move(row));
          const double secs = SecondsSince(start);
          if (stream_n / secs > stream_s1_tps[b]) {
            stream_s1_tps[b] = stream_n / secs;
          }
          legacy_grown = std::move(rel);
        } else {
          Result<StreamSession> session = StreamSession::Create(stream_spec);
          CATMARK_CHECK(session.ok()) << session.status().ToString();
          const auto start = Clock::now();
          for (std::size_t at = 0; at < rows.size();) {
            const std::size_t len = std::min(rows.size() - at, batch);
            Result<BatchReport> r = session->InsertBatch(
                rel, std::span<Row>(&rows[at], len));
            CATMARK_CHECK(r.ok()) << r.status().ToString();
            at += len;
          }
          const double secs = SecondsSince(start);
          if (stream_n / secs > stream_s1_tps[b]) {
            stream_s1_tps[b] = stream_n / secs;
          }
          if (batch == 1024) batched_grown = std::move(rel);
        }
      }
      // sessions = 8: the same stream fanned over distinct sessions.
      {
        WatermarkService service(ServiceOptions{DefaultThreadCount()});
        std::vector<std::size_t> ids;
        for (std::size_t s = 0; s < kStreamSessions; ++s) {
          Result<std::size_t> id = service.Open(stream_spec, stream_marked);
          CATMARK_CHECK(id.ok()) << id.status().ToString();
          ids.push_back(id.value());
        }
        std::vector<WatermarkService::SessionBatch> batches;
        for (std::size_t at = 0, i = 0; at < stream_rows.size(); ++i) {
          const std::size_t len =
              std::min(stream_rows.size() - at, batch);
          WatermarkService::SessionBatch sb;
          sb.session_id = ids[i % kStreamSessions];
          sb.rows.assign(stream_rows.begin() + at,
                         stream_rows.begin() + at + len);
          batches.push_back(std::move(sb));
          at += len;
        }
        const auto start = Clock::now();
        const std::vector<Result<BatchReport>> results =
            service.ExecuteBatches(
                std::span<WatermarkService::SessionBatch>(batches));
        const double secs = SecondsSince(start);
        for (const Result<BatchReport>& r : results) {
          CATMARK_CHECK(r.ok()) << r.status().ToString();
        }
        if (stream_n / secs > stream_s8_tps[b]) {
          stream_s8_tps[b] = stream_n / secs;
        }
      }
    }
  }
  // The batched pipeline must grow byte-identical data to the legacy path —
  // a fast but divergent service would be watermark-destroying, not a win.
  CATMARK_CHECK(batched_grown.SameContent(legacy_grown))
      << "batched stream inserts diverged from the one-at-a-time path";
  const double stream_batch_gain =
      stream_s1_tps[0] > 0.0 ? stream_s1_tps[kNumBatchSizes - 1] /
                                   stream_s1_tps[0]
                             : 0.0;

  // Steady-state streaming PRF rows: sessions opened ONCE per measurement
  // (verdict caches warmed by an untimed first pass), batch = 1024, per
  // keyed-PRF backend. The cold-session grid above deliberately re-opens
  // everything per pass, so its 8-session rows pay 8 cold verdict-cache
  // fills and the base relation's first-append page faults inside the
  // timer; on low-core hosts that bring-up cost can push cold s8 below
  // cold s1 — the documented waiver for those rows (measured in ISSUE 10:
  // the gap tracks key-pool hashing and base-relation size, not the
  // ExecuteBatches fan-out). These rows measure the sustained regime the
  // service actually runs in, and carry the s8 >= s1 CHECK the cold grid
  // cannot: with warm caches a multi-session fan-out must never run slower
  // than a single session on the same stream (0.8 factor absorbs scheduler
  // noise on small CI hosts).
  constexpr PrfKind kStreamPrfSweep[] = {PrfKind::kKeyedHash,
                                         PrfKind::kSipHash24};
  constexpr std::size_t kNumStreamPrfs = std::size(kStreamPrfSweep);
  constexpr std::size_t kStreamPrfBatch = 1024;
  double stream_prf_s1_tps[kNumStreamPrfs] = {};
  double stream_prf_s8_tps[kNumStreamPrfs] = {};
  for (std::size_t p = 0; p < kNumStreamPrfs; ++p) {
    SessionSpec prf_spec = stream_spec;
    prf_spec.params.prf = kStreamPrfSweep[p];
    for (const std::size_t sessions :
         {std::size_t{1}, std::size_t{kStreamSessions}}) {
      WatermarkService service(ServiceOptions{DefaultThreadCount()});
      std::vector<std::size_t> ids;
      for (std::size_t s = 0; s < sessions; ++s) {
        Result<std::size_t> id = service.Open(prf_spec, stream_marked);
        CATMARK_CHECK(id.ok()) << id.status().ToString();
        ids.push_back(id.value());
      }
      const auto run_once = [&]() -> double {
        std::vector<WatermarkService::SessionBatch> batches;
        for (std::size_t at = 0, i = 0; at < stream_rows.size(); ++i) {
          const std::size_t len =
              std::min(stream_rows.size() - at, kStreamPrfBatch);
          WatermarkService::SessionBatch sb;
          sb.session_id = ids[i % sessions];
          sb.rows.assign(stream_rows.begin() + at,
                         stream_rows.begin() + at + len);
          batches.push_back(std::move(sb));
          at += len;
        }
        const auto start = Clock::now();
        const std::vector<Result<BatchReport>> results =
            service.ExecuteBatches(
                std::span<WatermarkService::SessionBatch>(batches));
        const double secs = SecondsSince(start);
        for (const Result<BatchReport>& r : results) {
          CATMARK_CHECK(r.ok()) << r.status().ToString();
        }
        return stream_n / secs;
      };
      run_once();  // warm-up: fills the verdict caches, untimed
      double best = 0.0;
      for (std::size_t pass = 0; pass < config.passes; ++pass) {
        best = std::max(best, run_once());
      }
      (sessions == 1 ? stream_prf_s1_tps : stream_prf_s8_tps)[p] = best;
    }
    CATMARK_CHECK(stream_prf_s8_tps[p] >= 0.8 * stream_prf_s1_tps[p])
        << "warm " << kStreamSessions << "-session stream under "
        << std::string(PrfKindName(kStreamPrfSweep[p]))
        << " ran slower than a single session at batch=" << kStreamPrfBatch
        << " (" << stream_prf_s8_tps[p] << " vs " << stream_prf_s1_tps[p]
        << " t/s)";
  }

  // On-disk format rows: loading the marked relation and the full
  // load -> detect path, CSV versus .catm binary columnar. Pinned to the
  // siphash24 backend so fitness hashing does not mask the ingest story
  // (detect itself is identical between the rows — only the load differs).
  // Content and detection verdicts are checked identical across formats
  // inline, so a loader that is fast but wrong fails the bench.
  WatermarkParams format_params = parallel_params;
  format_params.prf = PrfKind::kSipHash24;
  Relation format_marked = original;
  Result<EmbedReport> format_embed =
      Embedder(keys, format_params).Embed(format_marked, embed_options, wm);
  CATMARK_CHECK(format_embed.ok()) << format_embed.status().ToString();
  DetectOptions format_options = detect_options;
  format_options.payload_length = format_embed.value().payload_length;
  format_options.domain = format_embed.value().domain;

  const char* tmpdir_env = std::getenv("TMPDIR");
  const std::string tmpdir =
      (tmpdir_env != nullptr && *tmpdir_env != '\0') ? tmpdir_env : "/tmp";
  const std::string csv_path = tmpdir + "/catmark_bench_rel.csv";
  const std::string catm_path = tmpdir + "/catmark_bench_rel.catm";
  {
    const Status s_csv = SaveRelation(format_marked, csv_path);
    CATMARK_CHECK(s_csv.ok()) << s_csv.ToString();
    const Status s_catm = SaveRelation(format_marked, catm_path);
    CATMARK_CHECK(s_catm.ok()) << s_catm.ToString();
  }
  const std::size_t csv_bytes = FileBytes::Open(csv_path).value().view().size();
  const std::size_t catm_bytes =
      FileBytes::Open(catm_path).value().view().size();

  double load_csv_tps = 0.0;
  double load_csv_parallel_tps = 0.0;
  double load_catm_tps = 0.0;
  double e2e_csv_tps = 0.0;
  double e2e_catm_tps = 0.0;
  DetectionResult format_detection;
  const Schema& format_schema = format_marked.schema();
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      const auto start = Clock::now();
      Result<Relation> r = ReadCsvFile(csv_path, format_schema);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().SameContent(format_marked))
          << "CSV round trip lost data";
      if (n / secs > load_csv_tps) load_csv_tps = n / secs;
    }
    {
      const auto start = Clock::now();
      Result<Relation> r = ReadCsvFileParallel(csv_path, format_schema);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().SameContent(format_marked))
          << "parallel CSV round trip lost data";
      if (n / secs > load_csv_parallel_tps) load_csv_parallel_tps = n / secs;
    }
    {
      const auto start = Clock::now();
      Result<Relation> r = ReadCatmFile(catm_path, format_schema);
      const double secs = SecondsSince(start);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      CATMARK_CHECK(r.value().SameContent(format_marked))
          << ".catm round trip lost data";
      if (n / secs > load_catm_tps) load_catm_tps = n / secs;
    }
    {
      const auto start = Clock::now();
      Result<Relation> r = LoadRelation(csv_path, format_schema);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      Result<DetectionResult> d = Detector(keys, format_params)
                                      .Detect(r.value(), format_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(d.ok()) << d.status().ToString();
      format_detection = std::move(d).value();
      if (n / secs > e2e_csv_tps) e2e_csv_tps = n / secs;
    }
    {
      const auto start = Clock::now();
      Result<Relation> r = LoadRelation(catm_path, format_schema);
      CATMARK_CHECK(r.ok()) << r.status().ToString();
      Result<DetectionResult> d = Detector(keys, format_params)
                                      .Detect(r.value(), format_options,
                                              wm.size());
      const double secs = SecondsSince(start);
      CATMARK_CHECK(d.ok()) << d.status().ToString();
      CATMARK_CHECK(d.value().wm == format_detection.wm)
          << ".catm detect decoded a different mark than CSV";
      CATMARK_CHECK_EQ(d.value().usable_votes, format_detection.usable_votes)
          << ".catm detect tallied different votes than CSV";
      if (n / secs > e2e_catm_tps) e2e_catm_tps = n / secs;
    }
  }
  const double e2e_format_gain =
      e2e_csv_tps > 0.0 ? e2e_catm_tps / e2e_csv_tps : 0.0;
  std::remove(csv_path.c_str());
  std::remove(catm_path.c_str());

  // Blind multi-key ownership sweep: "whose mark is this data carrying?"
  // over a large candidate key registry. The naive baseline re-runs a full
  // Detector::Detect per candidate, re-serializing every key and re-copying
  // the domain each time (what a pre-engine caller had to do, DetectWith-
  // Certificate-style); the engine row builds one RelationPlan and pushes
  // every candidate through the amortized per-key pass. The suspect uses a
  // repeat-heavy dictionary-encoded key column (a customer registry with
  // ~256 rows per customer) — the layout the dict-code gather exists for —
  // and the siphash24 backend, like the other headline perf rows. The first
  // kSweepNaiveKeys candidates are verified bit-identical between the two
  // paths inline, so a fast-but-divergent sweep fails the bench.
  const std::size_t sweep_n = std::min<std::size_t>(config.num_tuples, 300000);
  const std::size_t sweep_pool = std::max<std::size_t>(256, sweep_n / 256);
  constexpr std::size_t kSweepKeys = 1000;
  constexpr std::size_t kSweepNaiveKeys = 25;
  WatermarkParams sweep_params = serial_params;
  sweep_params.prf = PrfKind::kSipHash24;
  // Registry-style fixed payload (owner-side metadata), not the derived
  // N/e-long channel: a sweep decides 1000 claims against *recorded*
  // certificates, and an N-proportional vote vector per candidate would
  // charge the per-key pass for payload bookkeeping instead of hashing.
  sweep_params.payload_length = std::max<std::size_t>(config.wm_bits * 4, 64);
  Relation sweep_rel(Schema::Create({{"K", ColumnType::kString, true},
                                     {"A", ColumnType::kString, true}})
                         .value());
  {
    std::mt19937_64 rng(config.base_seed + 13);
    for (std::size_t i = 0; i < sweep_n; ++i) {
      const std::uint64_t h = rng();
      Row row;
      row.emplace_back("cust-" + std::to_string(h % sweep_pool));
      row.emplace_back("val-" +
                       std::to_string((h / sweep_pool) % config.domain_size));
      sweep_rel.AppendRowUnchecked(std::move(row));
    }
  }
  Result<EmbedReport> sweep_embed =
      Embedder(keys, sweep_params).Embed(sweep_rel, embed_options, wm);
  CATMARK_CHECK(sweep_embed.ok()) << sweep_embed.status().ToString();
  const EmbedReport sweep_report = std::move(sweep_embed).value();

  std::vector<KeyCandidate> sweep_candidates;
  sweep_candidates.reserve(kSweepKeys);
  for (std::size_t i = 0; i < kSweepKeys; ++i) {
    KeyCandidate c;
    c.keys = i == 0 ? keys
                    : WatermarkKeySet::FromSeed(config.base_seed * 1000 + i);
    c.params = sweep_params;
    c.params.payload_length = sweep_report.payload_length;
    c.wm_len = wm.size();
    sweep_candidates.push_back(std::move(c));
  }

  double sweep_naive_per_key_ms = std::numeric_limits<double>::infinity();
  double sweep_per_key_ms = std::numeric_limits<double>::infinity();
  double sweep_plan_ms = std::numeric_limits<double>::infinity();
  std::vector<DetectionResult> sweep_naive(kSweepNaiveKeys);
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    {
      const auto start = Clock::now();
      for (std::size_t i = 0; i < kSweepNaiveKeys; ++i) {
        DetectOptions naive_options;
        naive_options.key_attr = "K";
        naive_options.target_attr = "A";
        naive_options.payload_length = sweep_report.payload_length;
        naive_options.domain = sweep_report.domain;  // per-call copy
        Result<DetectionResult> r =
            Detector(sweep_candidates[i].keys, sweep_params)
                .Detect(sweep_rel, naive_options, wm.size());
        CATMARK_CHECK(r.ok()) << r.status().ToString();
        sweep_naive[i] = std::move(r).value();
      }
      const double ms = SecondsSince(start) * 1e3 / kSweepNaiveKeys;
      if (ms < sweep_naive_per_key_ms) sweep_naive_per_key_ms = ms;
    }
    {
      DetectEngineOptions engine_options;
      engine_options.key_attr = "K";
      engine_options.target_attr = "A";
      engine_options.domain_view = &sweep_report.domain;
      engine_options.payload_length = sweep_report.payload_length;
      engine_options.num_threads = serial_params.num_threads;
      const auto plan_start = Clock::now();
      Result<DetectEngine> engine =
          DetectEngine::Create(sweep_rel, engine_options);
      const double plan_ms = SecondsSince(plan_start) * 1e3;
      CATMARK_CHECK(engine.ok()) << engine.status().ToString();
      if (plan_ms < sweep_plan_ms) sweep_plan_ms = plan_ms;

      const auto start = Clock::now();
      const std::vector<Result<DetectionResult>> results =
          engine.value().DetectMany(
              std::span<const KeyCandidate>(sweep_candidates));
      const double ms = SecondsSince(start) * 1e3 / kSweepKeys;
      for (std::size_t i = 0; i < kSweepNaiveKeys; ++i) {
        CATMARK_CHECK(results[i].ok()) << results[i].status().ToString();
        CATMARK_CHECK(results[i].value().wm == sweep_naive[i].wm)
            << "sweep decoded a different mark than repeated detect (key "
            << i << ")";
        CATMARK_CHECK_EQ(results[i].value().usable_votes,
                         sweep_naive[i].usable_votes)
            << "sweep tallied different votes than repeated detect (key "
            << i << ")";
        CATMARK_CHECK_EQ(results[i].value().fit_tuples,
                         sweep_naive[i].fit_tuples)
            << "sweep found different fit tuples than repeated detect (key "
            << i << ")";
      }
      if (ms < sweep_per_key_ms) sweep_per_key_ms = ms;
    }
  }
  const double sweep_keys_per_sec =
      sweep_per_key_ms > 0.0 ? 1e3 / sweep_per_key_ms : 0.0;
  const double sweep_gain = sweep_per_key_ms > 0.0
                                ? sweep_naive_per_key_ms / sweep_per_key_ms
                                : 0.0;

  PrintTableTitle("embed/detect pipeline throughput (tuples/sec, best of "
                  "passes)");
  PrintTableHeader({"stage", "serial", "parallel", "speedup", "threads"});
  PrintTableRow({"embed", FormatDouble(embed.serial_tps, 0),
                 FormatDouble(embed.parallel_tps, 0),
                 FormatDouble(embed.speedup, 2),
                 std::to_string(parallel_params.num_threads)});
  PrintTableRow({"embed(map)", FormatDouble(embed_map.serial_tps, 0),
                 FormatDouble(embed_map.parallel_tps, 0),
                 FormatDouble(embed_map.speedup, 2),
                 std::to_string(parallel_params.num_threads)});
  PrintTableRow({"detect", FormatDouble(detect.serial_tps, 0),
                 FormatDouble(detect.parallel_tps, 0),
                 FormatDouble(detect.speedup, 2),
                 std::to_string(parallel_params.num_threads)});
  for (std::size_t p = 0; p < kNumPrfs; ++p) {
    PrintTableRow({"detect[" + std::string(PrfKindName(kPrfSweep[p])) + "]",
                   FormatDouble(prf_detect[p].serial_tps, 0),
                   FormatDouble(prf_detect[p].parallel_tps, 0),
                   FormatDouble(prf_detect[p].speedup, 2),
                   std::to_string(parallel_params.num_threads)});
  }
  PrintTableRow({"detect prf gain", FormatDouble(prf_fast_gain, 2) + "x",
                 "(siphash24 / keyed-hash, serial)", "-", "1"});
  for (std::size_t p = 0; p < kNumEmbedPrfs; ++p) {
    PrintTableRow(
        {"embed[" + std::string(PrfKindName(kEmbedPrfSweep[p])) + "]",
         FormatDouble(prf_embed[p].serial_tps, 0),
         FormatDouble(prf_embed[p].parallel_tps, 0),
         FormatDouble(prf_embed[p].speedup, 2),
         std::to_string(parallel_params.num_threads)});
  }
  PrintTableRow({"embed prf gain", FormatDouble(embed_prf_fast_gain, 2) + "x",
                 "(siphash24 / keyed-hash, serial)", "-", "1"});
  PrintTableRow(
      {"plan/index (ms)", FormatDouble(index_ms, 3), "-", "-", "1"});

  PrintTableTitle("detect SIMD dispatch + one-shot engine (siphash24, "
                  "single thread, tuples/sec)");
  PrintTableHeader({"stage", "tuples/sec", "", "", ""});
  PrintTableRow({"detect_simd_" + simd_level_name,
                 FormatDouble(detect_simd_tps, 0), "", "", ""});
  PrintTableRow({"detect_simd_off", FormatDouble(detect_simd_scalar_tps, 0),
                 "", "", ""});
  PrintTableRow({"detect_simd_gain", FormatDouble(detect_simd_gain, 2) + "x",
                 "(" + simd_level_name + " / scalar)", "", ""});
  PrintTableRow({"one-shot fused", FormatDouble(detect_simd_tps, 0),
                 "", "", ""});
  PrintTableRow({"plan-then-pass", FormatDouble(plan_pass_tps, 0),
                 "(Create + Detect)", "", ""});
  PrintTableRow({"one-shot gain", FormatDouble(oneshot_vs_plan_gain, 2) + "x",
                 "(fused / plan-then-pass)", "", ""});

  PrintTableTitle("on-disk format: load and load->detect throughput "
                  "(tuples/sec, best of passes; siphash24 PRF)");
  PrintTableHeader({"stage", "csv", "catm", "gain", "bytes"});
  PrintTableRow({"load(serial csv)", FormatDouble(load_csv_tps, 0), "-", "-",
                 std::to_string(csv_bytes)});
  PrintTableRow({"load", FormatDouble(load_csv_parallel_tps, 0),
                 FormatDouble(load_catm_tps, 0),
                 FormatDouble(load_csv_parallel_tps > 0.0
                                  ? load_catm_tps / load_csv_parallel_tps
                                  : 0.0,
                              2),
                 std::to_string(catm_bytes)});
  PrintTableRow({"load->detect", FormatDouble(e2e_csv_tps, 0),
                 FormatDouble(e2e_catm_tps, 0),
                 FormatDouble(e2e_format_gain, 2), "-"});

  PrintTableTitle("streaming service sustained inserts/sec (best of passes; "
                  "batch=1 is the legacy row-at-a-time path)");
  PrintTableHeader({"batch", "1 session", "8 sessions", "", ""});
  for (std::size_t b = 0; b < kNumBatchSizes; ++b) {
    PrintTableRow({std::to_string(kBatchSizes[b]),
                   FormatDouble(stream_s1_tps[b], 0),
                   FormatDouble(stream_s8_tps[b], 0), "", ""});
  }
  PrintTableRow({"batch gain", FormatDouble(stream_batch_gain, 2) + "x",
                 "(batch=1024 / batch=1, 1 session)", "", ""});

  PrintTableTitle("streaming steady state (warm sessions, batch=1024, "
                  "inserts/sec per PRF backend)");
  PrintTableHeader({"backend", "1 session", "8 sessions", "", ""});
  for (std::size_t p = 0; p < kNumStreamPrfs; ++p) {
    PrintTableRow({std::string(PrfKindName(kStreamPrfSweep[p])),
                   FormatDouble(stream_prf_s1_tps[p], 0),
                   FormatDouble(stream_prf_s8_tps[p], 0), "", ""});
  }

  PrintTableTitle("blind multi-key ownership sweep (dict keys, siphash24; "
                  "naive = repeated Detector::Detect)");
  PrintTableHeader({"metric", "value", "", "", ""});
  PrintTableRow({"sweep keys", std::to_string(kSweepKeys), "", "", ""});
  PrintTableRow({"suspect tuples", std::to_string(sweep_n), "", "", ""});
  PrintTableRow({"naive per-key (ms)",
                 FormatDouble(sweep_naive_per_key_ms, 3), "", "", ""});
  PrintTableRow({"sweep per-key (ms)", FormatDouble(sweep_per_key_ms, 4),
                 "", "", ""});
  PrintTableRow({"plan build (ms)", FormatDouble(sweep_plan_ms, 3),
                 "", "", ""});
  PrintTableRow({"sweep keys/sec", FormatDouble(sweep_keys_per_sec, 0),
                 "", "", ""});
  PrintTableRow({"sweep gain", FormatDouble(sweep_gain, 2) + "x",
                 "(naive per-key / sweep per-key)", "", ""});

  if (const char* json_path = std::getenv("CATMARK_BENCH_JSON")) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_throughput: cannot write %s\n", json_path);
      return 1;
    }
    char buf[16384];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"bench_throughput\",\n"
        "  \"n\": %zu,\n"
        "  \"domain\": %zu,\n"
        "  \"passes\": %zu,\n"
        "  \"threads\": %zu,\n"
        "  \"embed_serial_tps\": %.0f,\n"
        "  \"embed_parallel_tps\": %.0f,\n"
        "  \"embed_speedup\": %.3f,\n"
        "  \"embed_apply_shards\": %zu,\n"
        "  \"embed_map_serial_tps\": %.0f,\n"
        "  \"embed_map_parallel_tps\": %.0f,\n"
        "  \"embed_map_speedup\": %.3f,\n"
        "  \"detect_serial_tps\": %.0f,\n"
        "  \"detect_parallel_tps\": %.0f,\n"
        "  \"detect_speedup\": %.3f,\n"
        "  \"detect_prf_keyed_hash_serial_tps\": %.0f,\n"
        "  \"detect_prf_keyed_hash_parallel_tps\": %.0f,\n"
        "  \"detect_prf_hmac_sha256_serial_tps\": %.0f,\n"
        "  \"detect_prf_hmac_sha256_parallel_tps\": %.0f,\n"
        "  \"detect_prf_siphash24_serial_tps\": %.0f,\n"
        "  \"detect_prf_siphash24_parallel_tps\": %.0f,\n"
        "  \"detect_prf_fast_gain\": %.3f,\n"
        "  \"embed_prf_keyed_hash_serial_tps\": %.0f,\n"
        "  \"embed_prf_keyed_hash_parallel_tps\": %.0f,\n"
        "  \"embed_prf_siphash24_serial_tps\": %.0f,\n"
        "  \"embed_prf_siphash24_parallel_tps\": %.0f,\n"
        "  \"embed_prf_fast_gain\": %.3f,\n"
        "  \"simd_level\": \"%s\",\n"
        "  \"detect_simd_serial_tps\": %.0f,\n"
        "  \"detect_simd_scalar_serial_tps\": %.0f,\n"
        "  \"detect_simd_gain\": %.3f,\n"
        "  \"detect_oneshot_serial_tps\": %.0f,\n"
        "  \"detect_plan_pass_serial_tps\": %.0f,\n"
        "  \"detect_oneshot_gain\": %.3f,\n"
        "  \"index_build_ms\": %.4f,\n"
        "  \"load_csv_tps\": %.0f,\n"
        "  \"load_csv_parallel_tps\": %.0f,\n"
        "  \"load_catm_tps\": %.0f,\n"
        "  \"e2e_csv_tps\": %.0f,\n"
        "  \"e2e_catm_tps\": %.0f,\n"
        "  \"e2e_format_gain\": %.3f,\n"
        "  \"csv_bytes\": %zu,\n"
        "  \"catm_bytes\": %zu,\n"
        "  \"stream_n\": %zu,\n"
        "  \"stream_s1_b1_tps\": %.0f,\n"
        "  \"stream_s1_b64_tps\": %.0f,\n"
        "  \"stream_s1_b1024_tps\": %.0f,\n"
        "  \"stream_s8_b1_tps\": %.0f,\n"
        "  \"stream_s8_b64_tps\": %.0f,\n"
        "  \"stream_s8_b1024_tps\": %.0f,\n"
        "  \"stream_batch_gain\": %.3f,\n"
        "  \"stream_prf_keyed_hash_s1_tps\": %.0f,\n"
        "  \"stream_prf_keyed_hash_s8_tps\": %.0f,\n"
        "  \"stream_prf_siphash24_s1_tps\": %.0f,\n"
        "  \"stream_prf_siphash24_s8_tps\": %.0f,\n"
        "  \"sweep_keys\": %zu,\n"
        "  \"sweep_n\": %zu,\n"
        "  \"sweep_naive_per_key_ms\": %.4f,\n"
        "  \"sweep_per_key_ms\": %.5f,\n"
        "  \"sweep_plan_ms\": %.4f,\n"
        "  \"sweep_keys_per_sec\": %.0f,\n"
        "  \"sweep_gain\": %.2f\n"
        "}\n",
        config.num_tuples, config.domain_size, config.passes,
        parallel_params.num_threads, embed.serial_tps, embed.parallel_tps,
        embed.speedup, embed_apply_shards, embed_map.serial_tps,
        embed_map.parallel_tps, embed_map.speedup, detect.serial_tps,
        detect.parallel_tps, detect.speedup, prf_detect[0].serial_tps,
        prf_detect[0].parallel_tps, prf_detect[1].serial_tps,
        prf_detect[1].parallel_tps, prf_detect[2].serial_tps,
        prf_detect[2].parallel_tps, prf_fast_gain,
        prf_embed[0].serial_tps, prf_embed[0].parallel_tps,
        prf_embed[1].serial_tps, prf_embed[1].parallel_tps,
        embed_prf_fast_gain, simd_level_name.c_str(),
        detect_simd_tps, detect_simd_scalar_tps, detect_simd_gain,
        detect_simd_tps, plan_pass_tps, oneshot_vs_plan_gain, index_ms,
        load_csv_tps,
        load_csv_parallel_tps, load_catm_tps, e2e_csv_tps, e2e_catm_tps,
        e2e_format_gain, csv_bytes, catm_bytes, stream_n,
        stream_s1_tps[0], stream_s1_tps[1], stream_s1_tps[2],
        stream_s8_tps[0], stream_s8_tps[1], stream_s8_tps[2],
        stream_batch_gain,
        stream_prf_s1_tps[0], stream_prf_s8_tps[0],
        stream_prf_s1_tps[1], stream_prf_s8_tps[1],
        kSweepKeys, sweep_n, sweep_naive_per_key_ms,
        sweep_per_key_ms, sweep_plan_ms, sweep_keys_per_sec, sweep_gain);
    out << buf;
    std::printf("json report: %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  const catmark::ExperimentConfig config =
      catmark::ExperimentConfig::FromArgs(argc, argv);
  return catmark::Run(config);
}
