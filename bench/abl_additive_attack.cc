// Ablation — additive watermark attack (Section 6 future work): Mallory
// re-marks the owner's data with his own keys. Measures (a) how much of the
// owner's mark each additional adversarial pass destroys and (b) the key
// commitment asymmetry that settles the ownership dispute.

#include <cstdio>

#include "core/additive_attack.h"
#include "core/decision.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

void Run(const ExperimentConfig& config) {
  PrintTableTitle(
      "Ablation: additive watermark attack — owner's mark vs stacked "
      "adversarial marks (e=30)");
  std::printf("N=%zu  |wm|=%zu  passes=%zu\n", config.num_tuples,
              config.wm_bits, config.passes);
  PrintTableHeader({"adversarial passes", "owner mark match (%)",
                    "owner still owns (%)", "data altered by Mallory (%N)"});

  KeyedCategoricalConfig gen;
  gen.num_tuples = config.num_tuples;
  gen.domain_size = config.domain_size;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);
  WatermarkParams params;
  params.e = 30;

  for (const int stacked : {0, 1, 2, 4, 8}) {
    double match_sum = 0.0, owned_sum = 0.0, altered_sum = 0.0;
    for (std::size_t pass = 0; pass < config.passes; ++pass) {
      const WatermarkKeySet keys = WatermarkKeySet::FromSeed(9000 + pass);
      const BitVector wm = MakeWatermark(config.wm_bits, 9000 + pass);
      Relation marked = original;
      EmbedOptions options;
      options.key_attr = "K";
      options.target_attr = "A";
      const EmbedReport report =
          Embedder(keys, params).Embed(marked, options, wm).value();

      Relation attacked = marked;
      for (int s = 0; s < stacked; ++s) {
        AdditiveAttackResult r =
            AdditiveWatermarkAttack(attacked, "K", "A", params,
                                    config.wm_bits,
                                    9100 + pass * 16 + static_cast<std::uint64_t>(s))
                .value();
        attacked = std::move(r.relation);
        altered_sum += r.mallory_report.alteration_fraction * 100.0;
      }

      const Detector detector(keys, params);
      DetectOptions detect_options;
      detect_options.key_attr = "K";
      detect_options.target_attr = "A";
      detect_options.payload_length = report.payload_length;
      detect_options.domain = report.domain;
      const DetectionResult detection =
          detector.Detect(attacked, detect_options, config.wm_bits).value();
      const MatchStats stats = MatchWatermark(wm, detection.wm);
      match_sum += stats.match_fraction * 100.0;
      owned_sum += DecideOwnership(wm, detection.wm, 1e-3).owned ? 100.0 : 0.0;
    }
    const double n = static_cast<double>(config.passes);
    PrintTableRow({std::to_string(stacked), FormatDouble(match_sum / n),
                   FormatDouble(owned_sum / n),
                   FormatDouble(altered_sum / n)});
  }
  std::printf(
      "\nExpected: each adversarial pass alters only ~1/e of the tuples, so\n"
      "the owner's ECC-protected mark survives several stacked marks — the\n"
      "attack cannot *remove* a mark, it can only add competing claims,\n"
      "which key commitment then arbitrates (tests/additive_attack_test).\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
