// Figure 4 — "The watermark degrades gracefully with increasing attack
// size": mean watermark alteration (%) vs. random-alteration attack size
// (% of tuples altered), for e = 65 and e = 35. 15 key-averaged passes,
// 10-bit watermark, majority-voting ECC (the paper's configuration).

#include <cstdio>
#include <vector>

#include "attack/attacks.h"
#include "exp/harness.h"

namespace catmark {
namespace {

void Run(const ExperimentConfig& config) {
  PrintTableTitle(
      "Figure 4: watermark alteration (%) vs attack size (random "
      "alterations)");
  std::printf("N=%zu  |wm|=%zu  passes=%zu  ECC=majority voting\n",
              config.num_tuples, config.wm_bits, config.passes);
  PrintTableHeader({"attack size (%)", "e=65 mark alt (%)",
                    "e=35 mark alt (%)"});

  for (const double attack : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    std::vector<std::string> row;
    row.push_back(FormatDouble(attack * 100.0, 0));
    for (const std::uint64_t e : {65ull, 35ull}) {
      WatermarkParams params;
      params.e = e;
      const TrialOutcome outcome = RunAveragedTrial(
          config, params,
          [attack](const Relation& rel, std::uint64_t seed) {
            return SubsetAlterationAttack(rel, "A", attack, seed);
          });
      row.push_back(FormatDouble(outcome.mean_alteration_pct));
    }
    PrintTableRow(row);
  }
  std::printf(
      "\nPaper shape: both curves rise gracefully from ~0-5%% (20%% attack)\n"
      "toward ~25-40%% (80%% attack); the smaller e (more bandwidth) stays\n"
      "below the larger e at every attack size.\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
