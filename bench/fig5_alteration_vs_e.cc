// Figure 5 — "More available bandwidth (decreasing e) results in a higher
// attack resilience": mean watermark alteration (%) vs. the encoding
// parameter e, for random-alteration attack sizes 55% and 20%.

#include <cstdio>
#include <vector>

#include "attack/attacks.h"
#include "exp/harness.h"

namespace catmark {
namespace {

void Run(const ExperimentConfig& config) {
  PrintTableTitle("Figure 5: watermark alteration (%) vs e");
  std::printf("N=%zu  |wm|=%zu  passes=%zu\n", config.num_tuples,
              config.wm_bits, config.passes);
  PrintTableHeader({"e", "attack 55% (%)", "attack 20% (%)",
                    "embed alt. (% of N)"});

  for (const std::uint64_t e :
       {10ull, 25ull, 50ull, 75ull, 100ull, 125ull, 150ull, 175ull, 200ull}) {
    WatermarkParams params;
    params.e = e;
    std::vector<std::string> row;
    row.push_back(std::to_string(e));
    double embed_alt = 0.0;
    for (const double attack : {0.55, 0.20}) {
      const TrialOutcome outcome = RunAveragedTrial(
          config, params,
          [attack](const Relation& rel, std::uint64_t seed) {
            return SubsetAlterationAttack(rel, "A", attack, seed);
          });
      row.push_back(FormatDouble(outcome.mean_alteration_pct));
      embed_alt = outcome.mean_embed_alteration_pct;
    }
    row.push_back(FormatDouble(embed_alt));
    PrintTableRow(row);
  }
  std::printf(
      "\nPaper shape: alteration grows with e for both attack sizes (less\n"
      "bandwidth -> fewer votes per mark bit), with the 55%% attack curve\n"
      "strictly above the 20%% curve. The last column shows the price of\n"
      "small e: the fraction of data altered at embedding time (~1/e) —\n"
      "the resilience vs. data-quality trade-off of Section 4.4.\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
