// Ablation — frequency-domain channel (Section 4.2) and bijective remapping
// recovery (Section 4.5): the two "extreme attack" defenses.

#include <cstdio>

#include "attack/attacks.h"
#include "core/freq_mark.h"
#include "core/remap_recovery.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/histogram.h"
#include "relation/ops.h"

namespace catmark {
namespace {

void FreqChannel(const ExperimentConfig& config) {
  PrintTableTitle(
      "Frequency-domain mark: survival under extreme vertical partition + "
      "data loss");
  PrintTableHeader({"data loss (%)", "mark match (%)"});

  KeyedCategoricalConfig gen;
  gen.num_tuples = std::max<std::size_t>(config.num_tuples, 20000);
  gen.domain_size = 60;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);

  FreqMarkParams params;
  params.quantization_step = 0.02;

  for (const double loss : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    double match_sum = 0.0;
    for (std::size_t pass = 0; pass < config.passes; ++pass) {
      const FrequencyMarker marker(SecretKey::FromSeed(4000 + pass), params);
      const BitVector wm = MakeWatermark(8, 4000 + pass);
      Relation marked = original;
      if (!marker.Embed(marked, "A", wm).ok()) continue;
      // Extreme A5: Mallory keeps only attribute A, then drops tuples.
      Relation kept = VerticalPartitionAttack(marked, {"A"}).value();
      if (loss > 0.0) {
        kept = HorizontalPartitionAttack(kept, 1.0 - loss, 5000 + pass)
                   .value();
      }
      const FreqDetectReport detect =
          marker.Detect(kept, "A", wm.size()).value();
      match_sum += MatchWatermark(wm, detect.wm).match_fraction;
    }
    PrintTableRow({FormatDouble(loss * 100.0, 0),
                   FormatDouble(100.0 * match_sum /
                                static_cast<double>(config.passes))});
  }
  std::printf(
      "\nExpected: near-100%% match even though Mallory kept a single\n"
      "column and no key; degradation appears only when sampling noise\n"
      "approaches the quantization step q/2.\n");
}

void RemapRecoveryCase(const ExperimentConfig& config) {
  PrintTableTitle(
      "Bijective remapping (A6): detection before vs after Section 4.5 "
      "frequency-rank recovery");
  PrintTableHeader({"pass-avg", "no recovery (%)", "with recovery (%)"});

  KeyedCategoricalConfig gen;
  gen.num_tuples = std::max<std::size_t>(config.num_tuples, 20000);
  gen.domain_size = 40;
  gen.zipf_s = 1.1;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);
  const CategoricalDomain domain =
      CategoricalDomain::FromRelationColumn(original, 1).value();

  WatermarkParams params;
  params.e = 30;
  double without_sum = 0.0, with_sum = 0.0;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(6000 + pass);
    const BitVector wm = MakeWatermark(config.wm_bits, 6000 + pass);
    Relation marked = original;
    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    options.domain = domain;
    const EmbedReport report =
        Embedder(keys, params).Embed(marked, options, wm).value();
    const std::vector<double> published =
        FrequencyHistogram::Compute(marked, 1, domain).value().Frequencies();

    const RemapAttackResult attack =
        BijectiveRemapAttack(marked, "A", 7000 + pass).value();

    const Detector detector(keys, params);
    DetectOptions detect_options;
    detect_options.key_attr = "K";
    detect_options.target_attr = "A";
    detect_options.payload_length = report.payload_length;
    detect_options.domain = report.domain;

    const DetectionResult blind =
        detector.Detect(attack.relation, detect_options, wm.size()).value();
    without_sum += MatchWatermark(wm, blind.wm).match_fraction;

    const RemapRecovery recovery =
        RecoverBijectiveMapping(attack.relation, "A", domain, published)
            .value();
    const Relation restored =
        ApplyRecoveredMapping(attack.relation, "A", recovery, domain).value();
    const DetectionResult recovered =
        detector.Detect(restored, detect_options, wm.size()).value();
    with_sum += MatchWatermark(wm, recovered.wm).match_fraction;
  }
  PrintTableRow(
      {std::to_string(config.passes) + " passes",
       FormatDouble(100.0 * without_sum / static_cast<double>(config.passes)),
       FormatDouble(100.0 * with_sum / static_cast<double>(config.passes))});
  std::printf(
      "\nExpected: chance-level (~50%%) before recovery — every remapped\n"
      "value decodes as out-of-domain — and near-100%% after frequency-rank\n"
      "recovery on this skewed (Zipf 1.1) attribute.\n");
}

void Run(const ExperimentConfig& config) {
  FreqChannel(config);
  RemapRecoveryCase(config);
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
