// Ablation — data-addition embedding (Section 4.6): resilience gain from
// injecting padd*N fit tuples on top of the alteration-based mark, and the
// pure-injection variant ("no actual alterations").

#include <cstdio>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/injection.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

struct CaseResult {
  double match_pct;
  double data_altered_pct;
  double data_added_pct;
};

CaseResult RunCase(bool alter, double padd, double loss,
                   const ExperimentConfig& config) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = config.num_tuples;
  gen.domain_size = config.domain_size;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);

  WatermarkParams params;
  params.e = 60;

  // Owner-side metadata: the attribute's domain (passing it at detection
  // keeps value indices stable when heavy data loss removes categories).
  const CategoricalDomain domain =
      CategoricalDomain::FromRelationColumn(original, 1).value();

  double match_sum = 0.0, altered_sum = 0.0, added_sum = 0.0;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(8000 + pass);
    const BitVector wm = MakeWatermark(config.wm_bits, 8000 + pass);
    Relation marked = original;
    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    options.domain = domain;

    std::size_t payload_length =
        DerivePayloadLength(original.NumRows(), params.e, wm.size());
    if (alter) {
      const EmbedReport report =
          Embedder(keys, params).Embed(marked, options, wm).value();
      payload_length = report.payload_length;
      altered_sum += report.alteration_fraction * 100.0;
    }
    if (padd > 0.0) {
      WatermarkParams inj_params = params;
      inj_params.payload_length = payload_length;
      const FitTupleInjector injector(keys, inj_params);
      InjectionConfig inj;
      inj.padd = padd;
      inj.seed = 8100 + pass;
      const InjectionReport report =
          injector.Inject(marked, options, wm, inj).value();
      added_sum += 100.0 * static_cast<double>(report.tuples_added) /
                   static_cast<double>(original.NumRows());
    }

    const Relation kept =
        HorizontalPartitionAttack(marked, 1.0 - loss, 8200 + pass).value();
    const Detector detector(keys, params);
    DetectOptions detect_options;
    detect_options.key_attr = "K";
    detect_options.target_attr = "A";
    detect_options.payload_length = payload_length;
    detect_options.domain = domain;
    const DetectionResult detection =
        detector.Detect(kept, detect_options, wm.size()).value();
    match_sum += MatchWatermark(wm, detection.wm).match_fraction;
  }
  const double n = static_cast<double>(config.passes);
  return {100.0 * match_sum / n, altered_sum / n, added_sum / n};
}

void Run(const ExperimentConfig& config) {
  PrintTableTitle(
      "Ablation: data-addition embedding (Section 4.6) under 70% data loss");
  std::printf("N=%zu  |wm|=%zu  passes=%zu  e=60\n", config.num_tuples,
              config.wm_bits, config.passes);
  PrintTableHeader({"variant", "match (%)", "altered (% N)", "added (% N)"});

  const struct {
    const char* label;
    bool alter;
    double padd;
  } cases[] = {
      {"alteration only", true, 0.0},
      {"alteration + padd=5%", true, 0.05},
      {"alteration + padd=10%", true, 0.10},
      {"injection only padd=5%", false, 0.05},
      {"injection only padd=10%", false, 0.10},
  };
  for (const auto& c : cases) {
    const CaseResult r = RunCase(c.alter, c.padd, 0.7, config);
    PrintTableRow({c.label, FormatDouble(r.match_pct),
                   FormatDouble(r.data_altered_pct),
                   FormatDouble(r.data_added_pct)});
  }
  std::printf(
      "\nExpected: injection adds mark-carrying votes at zero alteration\n"
      "cost ('the watermark is effectively enforced with an additional\n"
      "padd*N bits'), lifting match rates under heavy data loss; pure\n"
      "injection alone already testifies while leaving every original\n"
      "tuple untouched.\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
