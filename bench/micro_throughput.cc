// Micro-benchmarks (google-benchmark): keyed hash, embedding and blind
// detection throughput as a function of N, plus the frequency-domain
// channel. These quantify the "massive data" practicality claim (Section
// 4.3) on commodity hardware.

#include <benchmark/benchmark.h>

#include "core/codec.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/freq_mark.h"
#include "crypto/keyed_hash.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

void BM_KeyedHash64(benchmark::State& state) {
  const KeyedHasher hasher(SecretKey::FromSeed(1),
                           static_cast<HashAlgorithm>(state.range(0)));
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Hash64(v++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KeyedHash64)
    ->Arg(static_cast<int>(HashAlgorithm::kMd5))
    ->Arg(static_cast<int>(HashAlgorithm::kSha1))
    ->Arg(static_cast<int>(HashAlgorithm::kSha256));

Relation BenchRelation(std::size_t n) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = 1000;
  config.seed = 7;
  return GenerateKeyedCategorical(config);
}

void BM_Embed(benchmark::State& state) {
  const Relation original = BenchRelation(static_cast<std::size_t>(state.range(0)));
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(2);
  WatermarkParams params;
  params.e = 60;
  const Embedder embedder(keys, params);
  const BitVector wm = MakeWatermark(10, 2);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  for (auto _ : state) {
    Relation rel = original;
    benchmark::DoNotOptimize(embedder.Embed(rel, options, wm));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Embed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Detect(benchmark::State& state) {
  Relation rel = BenchRelation(static_cast<std::size_t>(state.range(0)));
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(3);
  WatermarkParams params;
  params.e = 60;
  const BitVector wm = MakeWatermark(10, 3);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(rel, detect_options, wm.size()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Detect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FreqEmbed(benchmark::State& state) {
  const Relation original =
      BenchRelation(static_cast<std::size_t>(state.range(0)));
  FreqMarkParams params;
  params.quantization_step = 0.02;
  const FrequencyMarker marker(SecretKey::FromSeed(4), params);
  const BitVector wm = MakeWatermark(8, 4);
  for (auto _ : state) {
    Relation rel = original;
    benchmark::DoNotOptimize(marker.Embed(rel, "A", wm));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FreqEmbed)->Arg(10000)->Arg(100000);

void BM_FitnessTest(benchmark::State& state) {
  const FitnessSelector fitness(SecretKey::FromSeed(5), 60);
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitness.IsFit(Value(v++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FitnessTest);

}  // namespace
}  // namespace catmark

BENCHMARK_MAIN();
