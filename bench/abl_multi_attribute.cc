// Ablation — multiple attribute embeddings (Section 3.3): survival of the
// A5 vertical-partitioning attack with the pair closure vs. the base
// single-pair scheme, measured on the ItemScan-like relation.

#include <cstdio>

#include "attack/attacks.h"
#include "core/multi_attribute.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

double RunCase(bool use_closure, const std::vector<std::string>& kept_columns,
               const ExperimentConfig& config) {
  SalesGenConfig gen;
  gen.num_tuples = config.num_tuples;
  gen.num_items = 200;
  gen.seed = config.base_seed;
  const Relation original = GenerateItemScan(gen);

  WatermarkParams params;
  params.e = 25;
  double match_sum = 0.0;
  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(3000 + pass);
    const BitVector wm = MakeWatermark(config.wm_bits, 3000 + pass);
    Relation marked = original;
    const MultiAttributeEmbedder multi(keys, params);
    std::vector<AttributePair> pairs;
    if (use_closure) {
      pairs = PlanPairClosure(marked).value();
    } else {
      pairs = {{"Visit_Nbr", "Item_Nbr"}};
    }
    const MultiEmbedReport report = multi.EmbedAll(marked, pairs, wm).value();

    const Relation partitioned =
        VerticalPartitionAttack(marked, kept_columns).value();
    const auto detections =
        multi.DetectAll(partitioned, pairs, wm.size(),
                        report.passes[0].report.payload_length)
            .value();
    if (detections.empty()) {
      match_sum += 0.5;  // nothing to read: chance-level testimony
      continue;
    }
    const BitVector combined =
        MultiAttributeEmbedder::CombineDetections(detections, wm.size());
    match_sum += MatchWatermark(wm, combined).match_fraction;
  }
  return match_sum / static_cast<double>(config.passes);
}

void Run(ExperimentConfig config) {
  // The sales relation is wider than the harness default; cap the passes a
  // little for the closure case which runs 6 embedding passes per trial.
  PrintTableTitle(
      "Ablation: Section 3.3 pair closure vs base scheme under A5 vertical "
      "partitioning");
  std::printf("N=%zu  |wm|=%zu  passes=%zu  e=25\n", config.num_tuples,
              config.wm_bits, config.passes);
  PrintTableHeader({"kept columns", "base mark(K,A)", "pair closure"});

  const struct {
    const char* label;
    std::vector<std::string> columns;
  } cases[] = {
      {"all columns", {"Visit_Nbr", "Item_Nbr", "Store_Nbr", "Dept_Desc",
                       "Unit_Qty", "Sale_Amount"}},
      {"K + Item_Nbr", {"Visit_Nbr", "Item_Nbr"}},
      {"Item+Store+Dept (no K)", {"Item_Nbr", "Store_Nbr", "Dept_Desc"}},
      {"Item+Dept (no K)", {"Item_Nbr", "Dept_Desc"}},
  };
  for (const auto& c : cases) {
    PrintTableRow({c.label,
                   FormatDouble(100.0 * RunCase(false, c.columns, config)) +
                       "% match",
                   FormatDouble(100.0 * RunCase(true, c.columns, config)) +
                       "% match"});
  }
  std::printf(
      "\nExpected: both perfect while K survives; once K is projected away\n"
      "the base scheme falls to chance (~50%%) while the pair closure keeps\n"
      "testifying through the surviving categorical pairs.\n");
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
