// Figure 7 — "The watermark degrades almost linearly with increasing data
// loss": mean watermark alteration (%) vs. data loss (% of tuples dropped
// by the A1 subset-selection attack). Also checks the headline claim:
// "tolerating up to 80% data loss with a watermark alteration of only 25%".

#include <cstdio>
#include <vector>

#include "attack/attacks.h"
#include "exp/harness.h"

namespace catmark {
namespace {

void Run(const ExperimentConfig& config) {
  PrintTableTitle("Figure 7: watermark alteration (%) vs data loss");
  std::printf("N=%zu  |wm|=%zu  passes=%zu  e=60\n", config.num_tuples,
              config.wm_bits, config.passes);
  PrintTableHeader({"data loss (%)", "mark alt (%)", "stddev",
                    "payload fill"});

  WatermarkParams params;
  params.e = 60;
  double at80 = 0.0;
  for (const double loss : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    const TrialOutcome outcome = RunAveragedTrial(
        config, params, [loss](const Relation& rel, std::uint64_t seed) {
          return HorizontalPartitionAttack(rel, 1.0 - loss, seed);
        });
    PrintTableRow({FormatDouble(loss * 100.0, 0),
                   FormatDouble(outcome.mean_alteration_pct),
                   FormatDouble(outcome.stddev_alteration_pct),
                   FormatDouble(outcome.mean_payload_fill)});
    if (loss == 0.8) at80 = outcome.mean_alteration_pct;
  }
  std::printf(
      "\nPaper shape: near-linear growth, reaching ~20-25%% at 80%% loss.\n"
      "Headline claim check (<= ~25%% at 80%% loss): measured %.1f%%.\n",
      at80);
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) {
  catmark::Run(catmark::ExperimentConfig::FromArgs(argc, argv));
  return 0;
}
